// E-S8 — Reuse-distance ablation: the capacity/quality trade the paper's
// "minimum reuse distance" parameter hides.
//
// A tighter reuse pattern (smaller cluster) gives every cell more primary
// channels — less blocking — but packs co-channel cells closer, degrading
// the worst-case SIR the radio layer must tolerate. We sweep the
// interference radius (1 -> cluster 3, 2 -> cluster 7, 3 -> greedy
// colouring since no regular pattern applies), hold the absolute offered
// load fixed, and report capacity metrics next to the SIR the geometry
// delivers. All protocols run unmodified at every radius — the plan is a
// parameter, not an assumption.
#include <cstdio>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "radio/signal.hpp"
#include "runner/experiment.hpp"
#include "runner/world.hpp"

int main() {
  using namespace dca;
  using metrics::Table;
  using runner::Scheme;

  struct Config {
    int radius;
    bool greedy;
    int cluster;   // used when !greedy
    const char* label;
  };
  const Config configs[] = {
      {1, false, 3, "radius 1 / cluster 3"},
      {2, false, 7, "radius 2 / cluster 7 (paper)"},
      {3, true, 0, "radius 3 / greedy colouring"},
  };

  benchutil::heading(
      "Reuse-distance ablation: fixed 6.0 Erlang/cell absolute offered load");
  Table t({"plan", "|PR|", "first-tier SIR [dB]", "grid SIR [dB]", "FCA drop%",
           "Adaptive drop%", "Adaptive msgs/call"});

  for (const Config& c : configs) {
    auto cfg = benchutil::paper_config();
    cfg.interference_radius = c.radius;
    cfg.greedy_plan = c.greedy;
    if (!c.greedy) cfg.cluster = c.cluster;
    cfg.duration = sim::minutes(20);
    cfg.warmup = sim::minutes(3);
    // theta thresholds scale loosely with the primary pool; keep defaults
    // valid when |PR| is large.
    cfg.adaptive.theta_low = 2;
    cfg.adaptive.theta_high = 4;

    // Peek at the plan geometry via a throwaway world.
    runner::World probe(cfg, Scheme::kFca);
    const int n_colors = probe.plan().n_colors();
    const int pr = probe.plan().primary(probe.grid().n_cells() / 2).size();
    const auto sir = radio::worst_case_sir(
        probe.grid(), probe.plan(),
        (cfg.rows / 2) * cfg.cols + cfg.cols / 2, 4.0);
    const double tier_sir =
        radio::first_tier_sir_db(n_colors, 4.0);

    // Fixed ABSOLUTE load: 6 Erlang/cell regardless of |PR|.
    const double rho = 6.0 / static_cast<double>(cfg.n_channels / cfg.cluster);
    const double rate = 6.0 / cfg.mean_holding_s;  // calls/s for 6 Erlang
    (void)rho;
    const traffic::UniformProfile profile(rate);
    const runner::RunResult fca = runner::run_profile(cfg, Scheme::kFca, profile);
    const runner::RunResult ad =
        runner::run_profile(cfg, Scheme::kAdaptive, profile);
    if (fca.violations || ad.violations || !fca.quiescent || !ad.quiescent) {
      std::fprintf(stderr, "INVARIANT FAILURE at radius %d\n", c.radius);
      return 1;
    }
    t.add_row({c.label, std::to_string(pr), Table::num(tier_sir, 1),
               Table::num(sir.sir_db, 1), Table::num(100 * fca.agg.drop_rate(), 2),
               Table::num(100 * ad.agg.drop_rate(), 2),
               Table::num(ad.agg.messages_per_call.mean(), 1)});
  }
  std::printf("%s\n", t.render().c_str());

  benchutil::note(
      "Shape checks: cluster 3 triples the primary pool (blocking collapses)\n"
      "but its ~13 dB worst-case SIR is below the 18 dB analog threshold —\n"
      "the radio layer, not the protocol, dictates the paper's cluster-7\n"
      "choice. The whole protocol stack runs unmodified at radius 3 with a\n"
      "greedy (irregular) reuse plan.");
  return 0;
}
