// E-S3 — Ablations of the adaptive scheme's design choices (Section 3.5):
//
//  A1  hysteresis thresholds (θ_l, θ_h): wider hysteresis suppresses mode
//      flapping (CHANGE_MODE storms) at a small utilization cost;
//  A2  the α update-to-search cutover: α = 0-like behaviour (immediate
//      search) vs large α (update-heavy);
//  A3  the Best() lender heuristic vs a random eligible lender: Best()
//      reduces borrow-round collisions and thus mean attempts m;
//  A4  the prediction window W (with 2T << W the predictor is dominated by
//      the current value; shrinking W makes it twitchier).
#include <cstdio>

#include "bench_util.hpp"
#include "core/adaptive.hpp"
#include "metrics/table.hpp"
#include "runner/experiment.hpp"
#include "runner/world.hpp"
#include "traffic/generator.hpp"
#include "traffic/profile.hpp"

namespace {

using namespace dca;
using metrics::Table;
using runner::Scheme;

struct AdaptiveStats {
  runner::RunResult run;
  std::uint64_t mode_switches = 0;
  std::uint64_t change_mode_msgs = 0;
  std::uint64_t repacks = 0;
};

AdaptiveStats run_adaptive(const runner::ScenarioConfig& cfg, double rho_base,
                           bool hotspot) {
  runner::World w(cfg, Scheme::kAdaptive);
  const double rate = cfg.arrival_rate_for_load(rho_base);
  const cell::CellId hot = (cfg.rows / 2) * cfg.cols + cfg.cols / 2;
  const traffic::UniformProfile uni(rate);
  const traffic::HotspotProfile hs(rate, {hot}, 10.0, sim::minutes(5),
                                   sim::minutes(15));
  const traffic::LoadProfile& profile =
      hotspot ? static_cast<const traffic::LoadProfile&>(hs) : uni;
  traffic::TrafficSource src(
      w.simulator(), w.grid(), profile, cfg.mean_holding_s, cfg.seed,
      [&w](const traffic::CallSpec& spec) { w.submit_call(spec); });
  src.start(cfg.duration);
  w.simulator().run_to_quiescence();

  AdaptiveStats out;
  out.run.agg = w.collector().aggregate(w.latency_bound(), cfg.warmup);
  out.run.violations = w.interference_violations();
  out.run.quiescent = w.quiescent();
  out.run.total_messages = w.network().total_sent();
  out.change_mode_msgs = w.network().sent_of(net::MsgKind::kChangeMode);
  for (cell::CellId c = 0; c < w.grid().n_cells(); ++c) {
    const auto& n = dynamic_cast<const core::AdaptiveNode&>(w.node(c));
    out.mode_switches += n.switches_to_borrowing() + n.switches_to_local();
    out.repacks += n.repacks();
  }
  if (out.run.violations != 0 || !out.run.quiescent) {
    std::fprintf(stderr, "INVARIANT FAILURE in ablation\n");
    std::exit(1);
  }
  return out;
}

void print_stats_row(Table& t, const std::string& label, const AdaptiveStats& s) {
  char xi[32];
  std::snprintf(xi, sizeof xi, "%.2f/%.2f", s.run.agg.xi2, s.run.agg.xi3);
  t.add_row({label, Table::num(100.0 * s.run.agg.drop_rate(), 2),
             Table::num(s.run.agg.delay_in_T.mean(), 3),
             Table::num(s.run.agg.messages_per_call.mean(), 1),
             Table::num(s.run.agg.mean_update_attempts, 2), xi,
             std::to_string(s.mode_switches), std::to_string(s.change_mode_msgs)});
}

std::vector<std::string> stats_header() {
  return {"variant", "drop%", "AcqT [T]", "msgs/call", "m", "xi2/xi3",
          "mode switches", "CHANGE_MODE msgs"};
}

}  // namespace

int main() {
  auto base = benchutil::paper_config();
  base.duration = sim::minutes(20);
  base.warmup = sim::minutes(2);
  const double rho = 0.7;

  // ---- A1: hysteresis -------------------------------------------------
  benchutil::heading("A1: hysteresis thresholds (uniform rho = 0.7)");
  {
    Table t(stats_header());
    for (const auto& [lo, hi] : std::vector<std::pair<int, int>>{
             {1, 2}, {2, 4}, {4, 8}}) {
      auto cfg = base;
      cfg.adaptive.theta_low = lo;
      cfg.adaptive.theta_high = hi;
      print_stats_row(t, "theta=(" + std::to_string(lo) + "," + std::to_string(hi) + ")",
                      run_adaptive(cfg, rho, false));
    }
    std::printf("%s\n", t.render().c_str());
  }

  // ---- A2: alpha cutover ----------------------------------------------
  // Borrow-round collisions (and hence retries that alpha bounds) only
  // occur when requests overlap in time; with T = 5 ms they resolve long
  // before the next arrival, so this ablation runs in a slow-control-plane
  // regime (T = 500 ms) at high load where rounds genuinely fail.
  benchutil::heading(
      "A2: update->search cutover alpha (rho = 0.95, T = 500 ms)");
  {
    Table t(stats_header());
    for (const int alpha : {1, 2, 4, 8}) {
      auto cfg = base;
      cfg.adaptive.alpha = alpha;
      cfg.latency = sim::milliseconds(500);
      print_stats_row(t, "alpha=" + std::to_string(alpha),
                      run_adaptive(cfg, 0.95, false));
    }
    std::printf("%s\n", t.render().c_str());
  }

  // ---- A3: Best() heuristic vs random lender ---------------------------
  benchutil::heading("A3: Best() lender heuristic vs random (hot spot)");
  {
    Table t(stats_header());
    for (const bool best : {true, false}) {
      auto cfg = base;
      cfg.adaptive.use_best_heuristic = best;
      print_stats_row(t, best ? "Best() heuristic" : "random lender",
                      run_adaptive(cfg, 0.3, true));
    }
    std::printf("%s\n", t.render().c_str());
  }

  // ---- A4: prediction window ------------------------------------------
  benchutil::heading("A4: NFC prediction window W (uniform rho = 0.7)");
  {
    Table t(stats_header());
    for (const int w_s : {5, 30, 120}) {
      auto cfg = base;
      cfg.adaptive.window = sim::seconds(w_s);
      print_stats_row(t, "W=" + std::to_string(w_s) + "s",
                      run_adaptive(cfg, rho, false));
    }
    std::printf("%s\n", t.render().c_str());
  }

  // ---- A6: channel reassignment extension --------------------------------
  // Not in the paper (its reference [1] is the classic source): migrating
  // a borrowed-channel call onto a freed primary returns borrowed
  // spectrum to the neighbourhood early. Evaluated at a sustained hot
  // spot, where held borrowed channels are what starves the neighbours.
  benchutil::heading("A6: dynamic channel reassignment (hot spot, base rho = 0.3)");
  {
    Table t(stats_header());
    for (const bool repack : {false, true}) {
      auto cfg = base;
      cfg.adaptive.repack = repack;
      AdaptiveStats s = run_adaptive(cfg, 0.3, true);
      print_stats_row(t, repack ? "repack on" : "repack off (paper)", s);
      std::printf("  (%s: %llu reassignments)\n",
                  repack ? "repack on" : "repack off",
                  static_cast<unsigned long long>(s.repacks));
    }
    std::printf("%s\n", t.render().c_str());
  }

  // ---- strict Fig. 4 variant -------------------------------------------
  benchutil::heading("A5: Fig. 4 literal reject rule vs prose rule (rho = 0.7)");
  {
    Table t(stats_header());
    for (const bool strict : {false, true}) {
      auto cfg = base;
      cfg.adaptive.strict_fig4 = strict;
      print_stats_row(t, strict ? "strict figure rule" : "prose rule (default)",
                      run_adaptive(cfg, rho, false));
    }
    std::printf("%s\n", t.render().c_str());
  }

  return 0;
}
