// E-K1 — google-benchmark microbenchmarks of the simulation substrate:
// event-queue throughput, ChannelSet algebra, interference lookups, and
// end-to-end simulated-call throughput of the full world.
#include <benchmark/benchmark.h>

#include <memory>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"
#include "cell/spectrum.hpp"
#include "net/fault.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "runner/experiment.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace dca;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::RngStream rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(rng.uniform_int(0, 1'000'000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().when);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_SimulatorSelfSchedulingChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    int remaining = 10000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) s.schedule_in(1, tick);
    };
    s.schedule_in(1, tick);
    s.run_to_quiescence();
    benchmark::DoNotOptimize(s.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorSelfSchedulingChain);

void BM_NetworkSendDeliver(benchmark::State& state) {
  // The fault-free transport hot path: LinkId resolution, FIFO-floor
  // probe, inline delivery closure, dispatch — no reliable-transport
  // framing. One item = one message end to end.
  sim::Simulator s;
  const cell::HexGrid grid(16, 16, 2);
  net::Network netw(s, std::make_unique<net::FixedLatency>(sim::milliseconds(5)),
                    &grid);
  std::uint64_t delivered = 0;
  netw.set_receiver([&delivered](const net::Message&) { ++delivered; });
  const cell::CellId center = grid.n_cells() / 2 + 8;
  const auto in = grid.interference(center);
  net::Message msg;
  msg.from = center;
  std::size_t i = 0;
  for (auto _ : state) {
    msg.to = in[i++ % in.size()];
    netw.send(msg);
    s.run_to_quiescence();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_TransportSendAckRoundTrip(benchmark::State& state) {
  // Reliable transport engaged (jitter=1us, no drops/dups): one item =
  // data frame out, resequence, cumulative ack back, pending-window erase,
  // RTO cancel — the full send -> ack round trip on the ring buffers.
  sim::Simulator s;
  const cell::HexGrid grid(16, 16, 2);
  net::Network netw(s, std::make_unique<net::FixedLatency>(sim::milliseconds(5)),
                    &grid);
  net::FaultConfig fc;
  fc.jitter = 1;
  netw.enable_faults(fc, 42);
  std::uint64_t delivered = 0;
  netw.set_receiver([&delivered](const net::Message&) { ++delivered; });
  const cell::CellId center = grid.n_cells() / 2 + 8;
  const auto in = grid.interference(center);
  net::Message msg;
  msg.from = center;
  std::size_t i = 0;
  for (auto _ : state) {
    msg.to = in[i++ % in.size()];
    netw.send(msg);
    s.run_to_quiescence();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TransportSendAckRoundTrip);

void BM_TransportDupReorderCocktail(benchmark::State& state) {
  // Lossy-link cocktail (10% drop, 10% dup, 500us jitter): retransmit
  // timers, duplicate suppression, and out-of-order resequencing all hit
  // the per-link rings. Sends go in bursts so frames genuinely reorder.
  sim::Simulator s;
  const cell::HexGrid grid(16, 16, 2);
  net::Network netw(s, std::make_unique<net::FixedLatency>(sim::milliseconds(5)),
                    &grid);
  net::FaultConfig fc;
  fc.drop_prob = 0.10;
  fc.dup_prob = 0.10;
  fc.jitter = 500;
  netw.enable_faults(fc, 42);
  std::uint64_t delivered = 0;
  netw.set_receiver([&delivered](const net::Message&) { ++delivered; });
  const cell::CellId center = grid.n_cells() / 2 + 8;
  const auto in = grid.interference(center);
  net::Message msg;
  msg.from = center;
  constexpr int kBurst = 16;
  std::size_t i = 0;
  for (auto _ : state) {
    for (int b = 0; b < kBurst; ++b) {
      msg.to = in[i++ % in.size()];
      netw.send(msg);
    }
    s.run_to_quiescence();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBurst);
}
BENCHMARK(BM_TransportDupReorderCocktail);

void BM_ChannelSetAlgebra(benchmark::State& state) {
  cell::ChannelSet a(512), b(512);
  for (int i = 0; i < 512; i += 3) a.insert(i);
  for (int i = 0; i < 512; i += 5) b.insert(i);
  for (auto _ : state) {
    auto c = (a | b) - (a & b);
    benchmark::DoNotOptimize(c.size());
    benchmark::DoNotOptimize(c.first());
  }
}
BENCHMARK(BM_ChannelSetAlgebra);

void BM_ChannelSetIteration(benchmark::State& state) {
  cell::ChannelSet a(512);
  for (int i = 0; i < 512; i += 7) a.insert(i);
  for (auto _ : state) {
    int sum = 0;
    for (auto c = a.first(); c != cell::kNoChannel; c = a.next_after(c)) sum += c;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ChannelSetIteration);

void BM_GridConstruction(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cell::HexGrid g(side, side, 2);
    benchmark::DoNotOptimize(g.max_interference_degree());
  }
}
BENCHMARK(BM_GridConstruction)->Arg(8)->Arg(16)->Arg(32);

void BM_ReusePlanValidation(benchmark::State& state) {
  const cell::HexGrid g(16, 16, 2);
  const auto plan = cell::ReusePlan::cluster(g, 70, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.validate(g));
  }
}
BENCHMARK(BM_ReusePlanValidation);

void BM_EndToEndSimulatedMinute(benchmark::State& state) {
  // Full-system throughput: one simulated minute of the adaptive scheme at
  // moderate load on the paper-scale grid.
  runner::ScenarioConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.n_channels = 70;
  cfg.cluster = 7;
  cfg.duration = sim::minutes(1);
  cfg.warmup = 0;
  for (auto _ : state) {
    const auto r = runner::run_uniform(cfg, runner::Scheme::kAdaptive, 0.6);
    benchmark::DoNotOptimize(r.agg.offered);
    if (r.violations != 0) state.SkipWithError("invariant violated");
  }
}
BENCHMARK(BM_EndToEndSimulatedMinute)->Unit(benchmark::kMillisecond);

}  // namespace
