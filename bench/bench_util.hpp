// Shared configuration and printing helpers for the reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "runner/experiment.hpp"
#include "runner/scenario.hpp"

namespace dca::benchutil {

/// The paper-scale default scenario: 8x8 hexagonal grid, interference
/// radius 2 (minimum reuse distance 3 hops), 70 channels in a cluster-7
/// plan (|PR_i| = 10), T = 5 ms, exponential holding with mean 180 s.
inline runner::ScenarioConfig paper_config() {
  runner::ScenarioConfig c;
  c.rows = 8;
  c.cols = 8;
  c.interference_radius = 2;
  c.n_channels = 70;
  c.cluster = 7;
  c.mean_holding_s = 180.0;
  c.latency = sim::milliseconds(5);
  c.seed = 1;
  c.duration = sim::minutes(30);
  c.warmup = sim::minutes(5);
  c.adaptive.theta_low = 2;
  c.adaptive.theta_high = 4;
  c.adaptive.alpha = 3;
  c.adaptive.window = sim::seconds(30);
  return c;
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

}  // namespace dca::benchutil
