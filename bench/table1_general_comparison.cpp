// E-T1 — Reproduction of the paper's Table 1: "Comparison of Different
// schemes in General".
//
// Table 1 is symbolic: message complexity and acquisition time of each
// scheme as functions of (N, m, alpha, xi_1..3, N_search, N_borrow, n_p).
// We (a) print the symbolic rows exactly as the paper states them,
// (b) measure the parameters from a moderate-load simulation of the
// adaptive scheme, (c) evaluate the closed forms at those parameters, and
// (d) print the actually measured per-call costs next to them.
#include <cstdio>

#include "analysis/formulas.hpp"
#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace dca;
  using metrics::Table;
  using runner::Scheme;

  // Measure on a 14x14 torus so every cell has exactly the interior
  // N = 18 neighbourhood the formulas are written in.
  auto cfg = benchutil::paper_config();
  cfg.rows = 14;
  cfg.cols = 14;
  cfg.wrap = cell::Wrap::kToroidal;
  const double rho = 0.6;

  benchutil::heading("Table 1: general comparison (symbolic rows, paper Section 5)");
  Table sym({"Algorithm", "Message Complexity", "Channel Acquisition"});
  sym.add_row({"Basic Search", "2N", "(N_search + 1) T"});
  sym.add_row({"Basic Update", "2Nm + 2N", "2Tm"});
  sym.add_row({"Advanced Update", "(1-xi1)(2 n_p m + n_p(m-1)) + 2N", "(1-xi1) 2Tm"});
  sym.add_row({"Adaptive (Proposed)", "2 xi1 N_borrow + 3 xi2 m N + xi3 (3a+4) N",
               "{2m xi2 + (2a + N_search + 1) xi3} T"});
  std::printf("%s\n", sym.render().c_str());

  // ---- measure the model parameters at a moderate uniform load ----------
  const runner::RunResult ad = runner::run_uniform(cfg, Scheme::kAdaptive, rho);
  const runner::RunResult upd = runner::run_uniform(cfg, Scheme::kBasicUpdate, rho);
  if (ad.violations || upd.violations) {
    std::fprintf(stderr, "INVARIANT FAILURE\n");
    return 1;
  }

  analysis::ModelParams mp;
  mp.N = 18;
  mp.alpha = cfg.adaptive.alpha;
  mp.n_p = 3;
  mp.xi1 = ad.agg.xi1;
  mp.xi2 = ad.agg.xi2;
  mp.xi3 = ad.agg.xi3;
  mp.m = ad.agg.mean_update_attempts > 0 ? ad.agg.mean_update_attempts : 1.0;
  mp.N_borrow = ad.agg.mean_borrowing_neighbors;
  mp.N_search = ad.agg.mean_searching_neighbors > 0
                    ? ad.agg.mean_searching_neighbors
                    : 1.0;

  benchutil::heading("Measured model parameters (adaptive run, rho = 0.6)");
  std::printf("  xi1 = %.3f  xi2 = %.3f  xi3 = %.3f\n", mp.xi1, mp.xi2, mp.xi3);
  std::printf("  m = %.2f  N_borrow = %.2f  N_search = %.2f  (alpha = %.0f, N = %.0f)\n",
              mp.m, mp.N_borrow, mp.N_search, mp.alpha, mp.N);
  std::printf("  basic-update measured m = %.2f\n\n",
              upd.agg.mean_update_attempts);

  // ---- evaluate closed forms vs measured per-call costs ------------------
  benchutil::heading("Table 1 evaluated at the measured parameters");
  Table t({"Algorithm", "Msg model", "Msg measured", "AcqT model [T]",
           "AcqT measured [T]"});
  const struct Row {
    Scheme scheme;
    const char* name;
    analysis::Cost model;
  } rows[] = {
      {Scheme::kBasicSearch, "Basic Search", analysis::basic_search_general(mp)},
      {Scheme::kBasicUpdate, "Basic Update",
       analysis::basic_update_general([&] {
         auto p = mp;
         p.m = upd.agg.mean_update_attempts > 0 ? upd.agg.mean_update_attempts : 1.0;
         return p;
       }())},
      {Scheme::kAdvancedUpdate, "Advanced Update",
       analysis::advanced_update_general(mp)},
      {Scheme::kAdaptive, "Adaptive (Proposed)", analysis::adaptive_general(mp)},
  };
  for (const auto& row : rows) {
    const runner::RunResult r = row.scheme == Scheme::kAdaptive
                                    ? ad
                                    : (row.scheme == Scheme::kBasicUpdate
                                           ? upd
                                           : runner::run_uniform(cfg, row.scheme, rho));
    if (r.violations != 0 || !r.quiescent) {
      std::fprintf(stderr, "INVARIANT FAILURE in %s\n", row.name);
      return 1;
    }
    t.add_row({row.name, Table::num(row.model.messages, 1),
               Table::num(r.agg.messages_per_call.mean(), 1),
               Table::num(row.model.time_in_T, 2),
               Table::num(r.agg.delay_in_T.mean(), 2)});
  }
  std::printf("%s\n", t.render().c_str());

  benchutil::note(
      "Shape check: adaptive cheapest in both columns at moderate load; the\n"
      "update family's costs scale with m; search is flat in messages but\n"
      "pays (N_search+1)T. Measured basic-search messages include the\n"
      "decision announcement (see DESIGN.md note 6); measured advanced-\n"
      "update counts include its full-region ACQUISITION/RELEASE\n"
      "broadcasts.");
  return 0;
}
