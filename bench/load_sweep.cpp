// E-S1 — The empirical performance study the paper's introduction promises
// ("We provide some empirical performance study of the algorithm and
// compare it with some existing schemes"): call-drop rate, channel
// acquisition time, and control-message complexity as functions of the
// offered load, for all five schemes (the paper's four comparands plus the
// FCA baseline the hybrid degenerates to).
//
// Output: three series tables (rows = load points, columns = schemes) in
// both aligned-console and CSV form, ready for plotting.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace dca;
  using metrics::Table;
  using runner::Scheme;

  auto cfg = benchutil::paper_config();
  cfg.duration = sim::minutes(20);
  cfg.warmup = sim::minutes(4);

  const std::vector<double> rhos{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.95};
  const std::vector<Scheme> schemes(std::begin(runner::kAllSchemes),
                                    std::end(runner::kAllSchemes));

  benchutil::heading("Load sweep: uniform Poisson traffic, rho in [0.1, 0.95]");
  std::printf("grid %dx%d, %d channels, |PR| = %d, T = %.1f ms, %d min simulated\n",
              cfg.rows, cfg.cols, cfg.n_channels, cfg.n_channels / cfg.cluster,
              sim::to_milliseconds(cfg.latency),
              static_cast<int>(cfg.duration / sim::minutes(1)));

  const auto points = runner::sweep_uniform(cfg, schemes, rhos, /*threads=*/1);

  const auto cell_of = [&](Scheme s, double rho) -> const runner::RunResult& {
    for (const auto& p : points) {
      if (p.scheme == s && p.rho == rho) return p.result;
    }
    std::fprintf(stderr, "missing sweep point\n");
    std::exit(1);
  };

  // Safety first: every point must be clean.
  for (const auto& p : points) {
    if (p.result.violations != 0 || !p.result.quiescent) {
      std::fprintf(stderr, "INVARIANT FAILURE at %s rho=%.2f\n",
                   runner::scheme_name(p.scheme).c_str(), p.rho);
      return 1;
    }
  }

  std::vector<std::string> header{"rho"};
  for (const Scheme s : schemes) header.push_back(runner::scheme_name(s));

  struct Series {
    const char* title;
    double (*value)(const runner::RunResult&);
    int precision;
  };
  const Series series[] = {
      {"Call drop rate [%]",
       [](const runner::RunResult& r) { return 100.0 * r.agg.drop_rate(); }, 2},
      {"Mean channel acquisition time [units of T]",
       [](const runner::RunResult& r) { return r.agg.delay_in_T.mean(); }, 3},
      {"Max channel acquisition time [units of T]",
       [](const runner::RunResult& r) { return r.agg.delay_in_T.max(); }, 1},
      {"Control messages per call (attributed)",
       [](const runner::RunResult& r) { return r.agg.messages_per_call.mean(); }, 1},
      {"Adaptive-local fraction xi1 (adaptive column meaningful)",
       [](const runner::RunResult& r) { return r.agg.xi1; }, 3},
  };

  for (const Series& sr : series) {
    benchutil::heading(sr.title);
    Table t(header);
    for (const double rho : rhos) {
      std::vector<std::string> row{Table::num(rho, 2)};
      for (const Scheme s : schemes) {
        row.push_back(Table::num(sr.value(cell_of(s, rho)), sr.precision));
      }
      t.add_row(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("CSV:\n%s\n", t.csv().c_str());
  }

  // ---- message composition at one moderate point --------------------------
  benchutil::heading("Message composition at rho = 0.70 (share of total sent)");
  {
    const char* kind_names[] = {"REQUEST", "RESPONSE", "CHANGE_MODE", "RELEASE",
                                "ACQUISITION", "TRANSFER"};
    std::vector<std::string> h{"scheme", "total"};
    for (const auto* k : kind_names) h.emplace_back(k);
    Table t(h);
    for (const Scheme s : schemes) {
      const auto& r = cell_of(s, 0.7);
      std::vector<std::string> row{runner::scheme_name(s),
                                   std::to_string(r.total_messages)};
      for (int k = 0; k < net::kNumMsgKinds; ++k) {
        const double share =
            r.total_messages
                ? 100.0 *
                      static_cast<double>(
                          r.messages_by_kind[static_cast<std::size_t>(k)]) /
                      static_cast<double>(r.total_messages)
                : 0.0;
        row.push_back(Table::num(share, 1) + "%");
      }
      t.add_row(row);
    }
    std::printf("%s\n", t.render().c_str());
  }

  benchutil::note(
      "Shape checks: FCA drops most at every load; dynamic schemes converge\n"
      "to FCA at rho -> 0; adaptive tracks FCA's zero cost at low load and\n"
      "the search scheme's bounded delay at high load; basic update's\n"
      "messages/delay grow fastest with load.");
  return 0;
}
