// E-S5 — Mobility and handoff: the system-model element of Section 2.1
// ("when an MH moves out of the cell ... the handoff procedure ensures
// that the channels ... are relinquished and new channels are acquired").
//
// We sweep the mean cell-dwell time from "static users" down to highly
// mobile ones at a moderate uniform load and report, per scheme, the
// new-call block rate vs the forced-termination (handoff failure) rate,
// plus the extra signalling mobility induces.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace dca;
  using metrics::Table;
  using runner::Scheme;

  auto base = benchutil::paper_config();
  base.duration = sim::minutes(20);
  base.warmup = sim::minutes(3);
  const double rho = 0.6;
  const std::vector<double> dwells{0.0, 300.0, 120.0, 60.0, 30.0};

  benchutil::heading("Mobility sweep: uniform rho = 0.6, varying mean dwell time");
  for (const Scheme s :
       {Scheme::kFca, Scheme::kBasicSearch, Scheme::kAdaptive}) {
    std::printf("--- %s ---\n", runner::scheme_name(s).c_str());
    Table t({"mean dwell [s]", "new-call block %", "handoff fail %",
             "handoffs/call", "msgs/call", "mean AcqT [T]"});
    for (const double dwell : dwells) {
      auto cfg = base;
      cfg.mean_dwell_s = dwell;
      const runner::RunResult r = runner::run_uniform(cfg, s, rho);
      if (r.violations != 0 || !r.quiescent) {
        std::fprintf(stderr, "INVARIANT FAILURE\n");
        return 1;
      }
      // offered includes handoff re-requests; separate the two populations.
      const double handoffs = static_cast<double>(r.agg.handoff_offered);
      const double fresh = static_cast<double>(r.agg.offered) - handoffs;
      const double handoff_fails = static_cast<double>(r.agg.handoff_failures);
      const double newcall_drops =
          static_cast<double>(r.agg.blocked + r.agg.starved) - handoff_fails;
      t.add_row({dwell == 0.0 ? "static" : Table::num(dwell, 0),
                 Table::num(fresh > 0 ? 100.0 * newcall_drops / fresh : 0.0, 2),
                 Table::num(handoffs > 0 ? 100.0 * handoff_fails / handoffs : 0.0,
                            2),
                 Table::num(fresh > 0 ? handoffs / fresh : 0.0, 2),
                 Table::num(r.agg.messages_per_call.mean(), 1),
                 Table::num(r.agg.delay_in_T.mean(), 3)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  benchutil::note(
      "Shape checks: mobility multiplies channel requests (handoffs/call\n"
      "grows as dwell shrinks) and adds a forced-termination failure mode;\n"
      "dynamic schemes absorb it far better than FCA, at a signalling cost.");
  return 0;
}
