// E-S6 — Scalability (paper Section 6: "its distributed nature makes it
// highly scalable"). Grow the grid at fixed per-cell load and check that
// the *per-call* cost of the adaptive scheme stays flat — all coordination
// is confined to the 18-cell interference neighbourhood — while the
// system-wide message volume grows only linearly with the cell count.
// Also reports the simulator's wall-clock throughput per grid size.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace dca;
  using metrics::Table;
  using runner::Scheme;

  auto base = benchutil::paper_config();
  base.duration = sim::minutes(12);
  base.warmup = sim::minutes(2);
  const double rho = 0.7;

  benchutil::heading("Scalability: per-call cost vs grid size (adaptive, rho = 0.7)");
  Table t({"grid", "cells", "drop%", "msgs/call", "AcqT [T]", "total msgs",
           "msgs/cell/min", "events/s wall"});
  for (const int side : {4, 6, 8, 12, 16}) {
    auto cfg = base;
    cfg.rows = side;
    cfg.cols = side;
    const auto t0 = std::chrono::steady_clock::now();
    const runner::RunResult r = runner::run_uniform(cfg, Scheme::kAdaptive, rho);
    const auto wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (r.violations != 0 || !r.quiescent) {
      std::fprintf(stderr, "INVARIANT FAILURE at %dx%d\n", side, side);
      return 1;
    }
    const double cells = static_cast<double>(side * side);
    const double minutes = sim::to_seconds(cfg.duration) / 60.0;
    t.add_row({std::to_string(side) + "x" + std::to_string(side),
               std::to_string(side * side),
               Table::num(100.0 * r.agg.drop_rate(), 2),
               Table::num(r.agg.messages_per_call.mean(), 1),
               Table::num(r.agg.delay_in_T.mean(), 3),
               std::to_string(r.total_messages),
               Table::num(static_cast<double>(r.total_messages) / cells / minutes,
                          1),
               Table::num(static_cast<double>(r.executed_events) / wall, 0)});
  }
  std::printf("%s\n", t.render().c_str());

  benchutil::note(
      "Shape checks: messages per call and acquisition time are flat in the\n"
      "grid size (locality), so total message volume scales linearly with\n"
      "the number of cells — no global bottleneck anywhere.");
  return 0;
}
