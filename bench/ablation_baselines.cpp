// E-S7 — Baseline design-choice ablations:
//
//  B1  channel-selection policy of the basic update scheme (random vs
//      lowest-first vs round-robin): deterministic lowest-first makes
//      concurrent requesters collide on the same channel, inflating the
//      retry count m — the quantity every Table 1 update-family cost is
//      proportional to;
//  B2  the retry cap: how the (truncated-)unbounded behaviour of Table 3
//      surfaces as starvation as the cap shrinks;
//  B3  replication: headline load-sweep points with mean +/- sd over five
//      seeds, confirming the single-seed tables are not flukes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace dca;
  using metrics::Table;
  using proto::ChannelPick;
  using runner::Scheme;

  auto base = benchutil::paper_config();
  base.duration = sim::minutes(15);
  base.warmup = sim::minutes(2);

  // ---- B1: channel pick policy (basic update) ---------------------------
  benchutil::heading("B1: basic update channel-selection policy (rho = 0.85)");
  {
    Table t({"policy", "drop%", "starved", "mean attempts m", "msgs/call",
             "AcqT [T]"});
    for (const ChannelPick p :
         {ChannelPick::kRandom, ChannelPick::kLowest, ChannelPick::kRoundRobin}) {
      auto cfg = base;
      cfg.update_pick = p;
      const runner::RunResult r =
          runner::run_uniform(cfg, Scheme::kBasicUpdate, 0.85);
      if (r.violations != 0) return 1;
      t.add_row({proto::channel_pick_name(p),
                 Table::num(100.0 * r.agg.drop_rate(), 2),
                 std::to_string(r.agg.starved),
                 Table::num(r.agg.mean_update_attempts, 3),
                 Table::num(r.agg.messages_per_call.mean(), 1),
                 Table::num(r.agg.delay_in_T.mean(), 3)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // ---- B2: latency stress --------------------------------------------------
  // At T = 5 ms races are rare (requests resolve long before the next
  // arrival); the update family's m > 1 regime — the 2Tm growth of
  // Table 1 and the unbounded column of Table 3 — appears when the
  // control-channel latency is large relative to traffic dynamics.
  benchutil::heading(
      "B2: control latency stress (basic update, rho = 0.95, lowest-first)");
  {
    Table t({"T [ms]", "drop%", "starved", "mean attempts m", "max attempts",
             "msgs/call", "AcqT [T] mean"});
    for (const int t_ms : {5, 100, 500, 2000, 5000}) {
      auto cfg = base;
      cfg.latency = sim::milliseconds(t_ms);
      cfg.update_pick = proto::ChannelPick::kLowest;  // maximize contention
      const runner::RunResult r =
          runner::run_uniform(cfg, Scheme::kBasicUpdate, 0.95);
      if (r.violations != 0) return 1;
      t.add_row({std::to_string(t_ms), Table::num(100.0 * r.agg.drop_rate(), 2),
                 std::to_string(r.agg.starved),
                 Table::num(r.agg.mean_update_attempts, 3),
                 Table::num(r.agg.attempts.max(), 0),
                 Table::num(r.agg.messages_per_call.mean(), 1),
                 Table::num(r.agg.delay_in_T.mean(), 3)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // ---- B3: replication ----------------------------------------------------
  benchutil::heading("B3: five-seed replication of headline points (mean +/- sd)");
  {
    auto cfg = base;
    cfg.duration = sim::minutes(10);
    Table t({"scheme", "rho", "drop% mean", "drop% sd", "msgs/call mean",
             "msgs/call sd", "AcqT [T] mean", "AcqT [T] sd"});
    for (const Scheme s :
         {Scheme::kFca, Scheme::kBasicUpdate, Scheme::kAdaptive}) {
      for (const double rho : {0.4, 0.85}) {
        const runner::Replicated rep = runner::run_replicated(cfg, s, rho, 5);
        if (rep.violations != 0) return 1;
        t.add_row({runner::scheme_name(s), Table::num(rho, 2),
                   Table::num(100.0 * rep.drop_rate.mean(), 2),
                   Table::num(100.0 * rep.drop_rate.stddev(), 2),
                   Table::num(rep.mean_msgs_per_call.mean(), 1),
                   Table::num(rep.mean_msgs_per_call.stddev(), 2),
                   Table::num(rep.mean_delay_in_T.mean(), 3),
                   Table::num(rep.mean_delay_in_T.stddev(), 4)});
      }
    }
    std::printf("%s\n", t.render().c_str());
  }
  return 0;
}
