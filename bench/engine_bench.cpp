// Engine throughput benchmark: the sharded deterministic-parallel kernel
// against the classic single-queue engine on a large fixed-seed scenario.
//
// Emits BENCH_engine.json with wall-clock and events/sec per scheme at
// shards=1 and shards=N so the performance trajectory is tracked run over
// run, and finishes with a ConformanceChecker pass over the merged
// sharded trace (the speedup is worthless if the merge is wrong).
//
// The scenario is chosen for event density rather than paper fidelity:
// short holding times at high load on a large grid keep every cell's
// queue busy, so the per-window parallelism is real work, not idle
// barriers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "metrics/json.hpp"
#include "runner/conformance.hpp"
#include "runner/experiment.hpp"
#include "sim/trace.hpp"

namespace {

using dca::runner::RunResult;
using dca::runner::Scheme;

dca::runner::ScenarioConfig bench_config() {
  dca::runner::ScenarioConfig c;
  c.rows = 16;
  c.cols = 16;
  c.interference_radius = 2;
  c.n_channels = 70;
  c.cluster = 7;
  c.mean_holding_s = 5.0;  // short calls => high event density
  c.latency = dca::sim::milliseconds(5);
  c.seed = 7;
  c.duration = dca::sim::minutes(2);
  c.warmup = dca::sim::seconds(10);
  return c;
}

struct Measurement {
  std::string scheme;
  int shards = 1;
  int threads = 1;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
};

Measurement measure(const dca::runner::ScenarioConfig& cfg, Scheme scheme,
                    const std::string& name, double rho) {
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r = dca::runner::run_uniform(cfg, scheme, rho);
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.scheme = name;
  m.shards = cfg.shards;
  m.threads = cfg.threads;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.events = r.executed_events;
  m.events_per_sec = m.wall_s > 0 ? static_cast<double>(m.events) / m.wall_s : 0;
  std::printf("  %-14s shards=%d threads=%d  %9.3f s  %12llu events  %12.0f ev/s\n",
              name.c_str(), m.shards, m.threads, m.wall_s,
              static_cast<unsigned long long>(m.events), m.events_per_sec);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int shards_n = 4;
  if (argc > 1) shards_n = std::atoi(argv[1]);
  if (shards_n < 2) shards_n = 2;
  const double rho = 0.9;

  dca::benchutil::heading("engine throughput: classic vs sharded");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, sharded run uses shards=%d\n\n", hw, shards_n);

  const struct {
    Scheme scheme;
    const char* name;
  } kSchemes[] = {
      {Scheme::kAdaptive, "adaptive"},
      {Scheme::kBasicSearch, "basic_search"},
  };

  std::vector<Measurement> results;
  for (const auto& s : kSchemes) {
    dca::runner::ScenarioConfig c1 = bench_config();
    c1.shards = 1;
    results.push_back(measure(c1, s.scheme, s.name, rho));

    dca::runner::ScenarioConfig cn = bench_config();
    cn.shards = shards_n;
    cn.threads = 0;  // one worker per shard, capped by the hardware
    results.push_back(measure(cn, s.scheme, s.name, rho));

    const double base = results[results.size() - 2].events_per_sec;
    const double par = results.back().events_per_sec;
    std::printf("  %-14s speedup: %.2fx\n\n", s.name,
                base > 0 ? par / base : 0.0);
  }

  // Determinism sanity for the record: events/sec means nothing if the
  // sharded engine diverged. The merged trace must satisfy every
  // conformance invariant (incl. reuse-distance, which substitutes for
  // the cross-shard half of the online Theorem-1 check).
  dca::benchutil::heading("conformance of the merged sharded trace");
  dca::runner::ScenarioConfig cc = bench_config();
  cc.shards = shards_n;
  dca::sim::TraceRecorder rec;
  const RunResult traced =
      dca::runner::run_uniform(cc, Scheme::kAdaptive, rho, &rec);
  const dca::cell::HexGrid grid(cc.rows, cc.cols, cc.interference_radius,
                                cc.wrap);
  const auto report =
      dca::runner::check_trace(grid, cc.n_channels, rec.events());
  std::printf("events=%llu quiescent=%d -> %s\n",
              static_cast<unsigned long long>(report.events),
              traced.quiescent ? 1 : 0,
              report.ok() ? "OK" : report.to_string().c_str());

  dca::metrics::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("engine");
  w.key("hardware_threads");
  w.value(static_cast<std::int64_t>(hw));
  w.key("rho");
  w.value(rho);
  w.key("conformance_ok");
  w.value(report.ok());
  w.key("results");
  w.begin_array();
  for (const auto& m : results) {
    w.begin_object();
    w.key("scheme");
    w.value(m.scheme);
    w.key("shards");
    w.value(m.shards);
    w.key("threads");
    w.value(m.threads);
    w.key("wall_s");
    w.value(m.wall_s);
    w.key("events");
    w.value(m.events);
    w.key("events_per_sec");
    w.value(m.events_per_sec);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string json = w.str();
  if (FILE* f = std::fopen("BENCH_engine.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote BENCH_engine.json\n");
  } else {
    std::fprintf(stderr, "engine_bench: cannot write BENCH_engine.json\n");
    return 1;
  }
  return report.ok() ? 0 : 1;
}
