// Engine throughput benchmark: the sharded deterministic-parallel kernel
// against the classic single-queue engine on a large fixed-seed scenario.
//
// Appends one timestamped trajectory entry per run to BENCH_engine.json
// (a JSON array; a legacy single-object file is wrapped on first append)
// so the performance trajectory is tracked run over run, with
// scheme/shards/partition/git-rev metadata per entry. Each run also
// measures the striped-vs-blocks partition on a 12x12 grid at shards=4
// (cross-shard protocol messages — the engine-cost metric the
// geometry-aware partition exists to shrink) and finishes with a
// ConformanceChecker pass over the merged sharded trace (the speedup is
// worthless if the merge is wrong).
//
// The scenario is chosen for event density rather than paper fidelity:
// short holding times at high load on a large grid keep every cell's
// queue busy, so the per-window parallelism is real work, not idle
// barriers.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cell/partition.hpp"
#include "metrics/json.hpp"
#include "runner/conformance.hpp"
#include "runner/experiment.hpp"
#include "sim/trace.hpp"

namespace {

using dca::runner::RunResult;
using dca::runner::Scheme;

dca::runner::ScenarioConfig bench_config() {
  dca::runner::ScenarioConfig c;
  c.rows = 16;
  c.cols = 16;
  c.interference_radius = 2;
  c.n_channels = 70;
  c.cluster = 7;
  c.mean_holding_s = 5.0;  // short calls => high event density
  c.latency = dca::sim::milliseconds(5);
  c.seed = 7;
  c.duration = dca::sim::minutes(2);
  c.warmup = dca::sim::seconds(10);
  return c;
}

const char* partition_name(dca::cell::Partition p) {
  return p == dca::cell::Partition::kStriped ? "striped" : "blocks";
}

struct Measurement {
  std::string scheme;
  int shards = 1;
  int threads = 1;
  std::string partition;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
};

Measurement measure(const dca::runner::ScenarioConfig& cfg, Scheme scheme,
                    const std::string& name, double rho) {
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r = dca::runner::run_uniform(cfg, scheme, rho);
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.scheme = name;
  m.shards = cfg.shards;
  m.threads = cfg.threads;
  m.partition = partition_name(cfg.partition);
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.events = r.executed_events;
  m.events_per_sec = m.wall_s > 0 ? static_cast<double>(m.events) / m.wall_s : 0;
  std::printf("  %-14s shards=%d threads=%d partition=%-7s  %9.3f s  %12llu events  %12.0f ev/s\n",
              name.c_str(), m.shards, m.threads, m.partition.c_str(), m.wall_s,
              static_cast<unsigned long long>(m.events), m.events_per_sec);
  return m;
}

/// Cross-shard protocol messages under a given partition on the 12x12
/// comparison scenario. Simulation outputs are bit-identical either way;
/// only this engine-cost metric moves.
std::uint64_t cross_shard_count(dca::cell::Partition p) {
  dca::runner::ScenarioConfig c = bench_config();
  c.rows = 12;
  c.cols = 12;
  c.duration = dca::sim::seconds(30);
  c.shards = 4;
  c.partition = p;
  const RunResult r = dca::runner::run_uniform(c, Scheme::kAdaptive, 0.9);
  return r.cross_shard_messages;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string git_rev() {
  std::string rev = "unknown";
  if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p)) {
      rev.assign(buf);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r'))
        rev.pop_back();
    }
    pclose(p);
    if (rev.empty()) rev = "unknown";
  }
  return rev;
}

std::string read_file(const char* path) {
  std::string out;
  if (FILE* f = std::fopen(path, "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

/// Appends `entry` (a JSON object) to the trajectory array in `path`.
/// Handles three prior states: missing/empty file, a legacy single-object
/// file (wrapped into a one-element array first), and an existing array.
bool append_trajectory(const char* path, const std::string& entry) {
  std::string prior = read_file(path);
  // Trim trailing whitespace so we can splice before the closing bracket.
  while (!prior.empty() && std::isspace(static_cast<unsigned char>(prior.back())))
    prior.pop_back();

  std::string merged;
  if (prior.empty()) {
    merged = "[\n" + entry + "\n]";
  } else if (prior.front() == '[' && prior.back() == ']') {
    prior.pop_back();
    while (!prior.empty() && std::isspace(static_cast<unsigned char>(prior.back())))
      prior.pop_back();
    const bool was_empty_array = prior == "[";
    merged = prior + (was_empty_array ? "\n" : ",\n") + entry + "\n]";
  } else {
    // Legacy single-object format: preserve it as the first entry.
    merged = "[\n" + prior + ",\n" + entry + "\n]";
  }

  FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fwrite(merged.data(), 1, merged.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int shards_n = 4;
  if (argc > 1) shards_n = std::atoi(argv[1]);
  if (shards_n < 2) shards_n = 2;
  const double rho = 0.9;

  dca::benchutil::heading("engine throughput: classic vs sharded");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, sharded run uses shards=%d\n\n", hw, shards_n);

  const struct {
    Scheme scheme;
    const char* name;
  } kSchemes[] = {
      {Scheme::kAdaptive, "adaptive"},
      {Scheme::kBasicSearch, "basic_search"},
  };

  std::vector<Measurement> results;
  for (const auto& s : kSchemes) {
    dca::runner::ScenarioConfig c1 = bench_config();
    c1.shards = 1;
    results.push_back(measure(c1, s.scheme, s.name, rho));

    dca::runner::ScenarioConfig cn = bench_config();
    cn.shards = shards_n;
    cn.threads = 0;  // one worker per shard, capped by the hardware
    results.push_back(measure(cn, s.scheme, s.name, rho));

    const double base = results[results.size() - 2].events_per_sec;
    const double par = results.back().events_per_sec;
    std::printf("  %-14s speedup: %.2fx\n\n", s.name,
                base > 0 ? par / base : 0.0);
  }

  // Partition engine-cost comparison: same simulation, different cell->
  // shard maps. Blocks should need far fewer cross-shard messages than
  // stripes because interference neighbourhoods are geometrically local.
  dca::benchutil::heading("cross-shard messages: striped vs blocks (12x12, shards=4)");
  const std::uint64_t xs_striped = cross_shard_count(dca::cell::Partition::kStriped);
  const std::uint64_t xs_blocks = cross_shard_count(dca::cell::Partition::kBlocks);
  const double xs_ratio =
      xs_striped > 0 ? static_cast<double>(xs_blocks) / static_cast<double>(xs_striped)
                     : 0.0;
  std::printf("striped=%llu blocks=%llu  blocks/striped=%.3f\n",
              static_cast<unsigned long long>(xs_striped),
              static_cast<unsigned long long>(xs_blocks), xs_ratio);

  // Determinism sanity for the record: events/sec means nothing if the
  // sharded engine diverged. The merged trace must satisfy every
  // conformance invariant (incl. reuse-distance, which substitutes for
  // the cross-shard half of the online Theorem-1 check).
  dca::benchutil::heading("conformance of the merged sharded trace");
  dca::runner::ScenarioConfig cc = bench_config();
  cc.shards = shards_n;
  dca::sim::TraceRecorder rec;
  const RunResult traced =
      dca::runner::run_uniform(cc, Scheme::kAdaptive, rho, &rec);
  const dca::cell::HexGrid grid(cc.rows, cc.cols, cc.interference_radius,
                                cc.wrap);
  const auto report =
      dca::runner::check_trace(grid, cc.n_channels, rec.events());
  std::printf("events=%llu quiescent=%d -> %s\n",
              static_cast<unsigned long long>(report.events),
              traced.quiescent ? 1 : 0,
              report.ok() ? "OK" : report.to_string().c_str());

  dca::metrics::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("engine");
  w.key("timestamp_utc");
  w.value(utc_timestamp());
  w.key("git_rev");
  w.value(git_rev());
  w.key("hardware_threads");
  w.value(static_cast<std::int64_t>(hw));
  w.key("rho");
  w.value(rho);
  w.key("conformance_ok");
  w.value(report.ok());
  w.key("results");
  w.begin_array();
  for (const auto& m : results) {
    w.begin_object();
    w.key("scheme");
    w.value(m.scheme);
    w.key("shards");
    w.value(m.shards);
    w.key("threads");
    w.value(m.threads);
    w.key("partition");
    w.value(m.partition);
    w.key("wall_s");
    w.value(m.wall_s);
    w.key("events");
    w.value(m.events);
    w.key("events_per_sec");
    w.value(m.events_per_sec);
    w.end_object();
  }
  w.end_array();
  w.key("partition_comparison");
  w.begin_object();
  w.key("grid");
  w.value("12x12");
  w.key("shards");
  w.value(std::int64_t{4});
  w.key("scheme");
  w.value("adaptive");
  w.key("striped_cross_shard_messages");
  w.value(xs_striped);
  w.key("blocks_cross_shard_messages");
  w.value(xs_blocks);
  w.key("blocks_over_striped");
  w.value(xs_ratio);
  w.end_object();
  w.end_object();

  if (append_trajectory("BENCH_engine.json", w.str())) {
    std::printf("\nappended trajectory entry to BENCH_engine.json\n");
  } else {
    std::fprintf(stderr, "engine_bench: cannot write BENCH_engine.json\n");
    return 1;
  }
  return report.ok() ? 0 : 1;
}
