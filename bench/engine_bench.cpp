// Engine throughput benchmark: the sharded deterministic-parallel kernel
// against the classic single-queue engine on a large fixed-seed scenario.
//
// Appends one timestamped trajectory entry per run to BENCH_engine.json
// (a JSON array; a legacy single-object file is wrapped on first append)
// so the performance trajectory is tracked run over run, with
// scheme/shards/partition/git-rev metadata per entry. Each run also
// measures the striped-vs-blocks partition on a 12x12 grid at shards=4
// (cross-shard protocol messages — the engine-cost metric the
// geometry-aware partition exists to shrink) and finishes with a
// ConformanceChecker pass over the merged sharded trace (the speedup is
// worthless if the merge is wrong).
//
// The scenario is chosen for event density rather than paper fidelity:
// short holding times at high load on a large grid keep every cell's
// queue busy, so the per-window parallelism is real work, not idle
// barriers.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "cell/partition.hpp"
#include "metrics/json.hpp"
#include "net/latency.hpp"
#include "net/link_table.hpp"
#include "net/network.hpp"
#include "runner/conformance.hpp"
#include "runner/experiment.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace {

using dca::runner::RunResult;
using dca::runner::Scheme;

dca::runner::ScenarioConfig bench_config() {
  dca::runner::ScenarioConfig c;
  c.rows = 16;
  c.cols = 16;
  c.interference_radius = 2;
  c.n_channels = 70;
  c.cluster = 7;
  c.mean_holding_s = 5.0;  // short calls => high event density
  c.latency = dca::sim::milliseconds(5);
  c.seed = 7;
  c.duration = dca::sim::minutes(2);
  c.warmup = dca::sim::seconds(10);
  return c;
}

const char* partition_name(dca::cell::Partition p) {
  return p == dca::cell::Partition::kStriped ? "striped" : "blocks";
}

/// Worker threads a config actually runs with — the kernel's resolution of
/// threads <= 0 ("one per shard, capped by the hardware"), so trajectory
/// entries record real parallelism instead of the raw knob (which was
/// recorded as a meaningless 0 before).
int resolved_workers(const dca::runner::ScenarioConfig& c) {
  if (c.shards <= 1 && !c.stream_metrics) return 1;  // classic engine
  int t = c.threads;
  if (t <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    t = static_cast<int>(std::min<unsigned>(static_cast<unsigned>(c.shards),
                                            hw == 0 ? 1u : hw));
  }
  return std::min(t, c.shards);
}

struct Measurement {
  std::string scheme;
  std::string policy;  // canonical describe(), params filled in
  int shards = 1;
  int threads = 1;
  std::string partition;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  double events_per_sec = 0.0;
};

Measurement measure(const dca::runner::ScenarioConfig& cfg, Scheme scheme,
                    const std::string& name, const std::string& policy_desc,
                    double rho) {
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r = dca::runner::run_uniform(cfg, scheme, rho);
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.scheme = name;
  m.policy = policy_desc;
  m.shards = cfg.shards;
  m.threads = resolved_workers(cfg);
  m.partition = partition_name(cfg.partition);
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.events = r.executed_events;
  m.messages = r.total_messages;
  m.events_per_sec = m.wall_s > 0 ? static_cast<double>(m.events) / m.wall_s : 0;
  std::printf("  %-14s policy=%-9s shards=%d threads=%d partition=%-7s  %9.3f s  %12llu events  %12.0f ev/s\n",
              name.c_str(), m.policy.c_str(), m.shards, m.threads,
              m.partition.c_str(), m.wall_s,
              static_cast<unsigned long long>(m.events), m.events_per_sec);
  return m;
}

// -- transport-layer breakdown ----------------------------------------------
//
// Two micro-timings isolate what one engine event and one network message
// cost on the flattened hot path, then the classic run's (events, messages,
// wall) decomposes into estimated shares of wall time: transport
// (send+deliver, including the delivery event), queue (the remaining
// non-delivery events' schedule+dispatch overhead), and protocol logic (the
// residual — the allocator state machines themselves).

/// Self-scheduling chain functor: stays inside EventFn's inline buffer, so
/// this times the flattened schedule -> heap -> dispatch path alone.
struct ChainTick {
  dca::sim::Simulator* sim;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) sim->schedule_in(1, ChainTick{sim, remaining});
  }
};

double measure_queue_ns_per_event() {
  dca::sim::Simulator sim;
  int remaining = 2'000'000;
  const int total = remaining;
  const auto t0 = std::chrono::steady_clock::now();
  sim.schedule_in(1, ChainTick{&sim, &remaining});
  sim.run_to_quiescence();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / total;
}

double measure_transport_ns_per_message(const dca::runner::ScenarioConfig& cfg) {
  // Drives Network::send over the real link table of the bench grid,
  // round-robin across one cell's interference neighbourhood, with
  // deliveries drained in batches (mirrors the running engine: sends and
  // deliveries interleave).
  dca::sim::Simulator sim;
  const dca::cell::HexGrid grid(cfg.rows, cfg.cols, cfg.interference_radius,
                                cfg.wrap);
  dca::net::Network net(
      sim, std::make_unique<dca::net::FixedLatency>(cfg.latency), &grid);
  std::uint64_t delivered = 0;
  net.set_receiver([&delivered](const dca::net::Message&) { ++delivered; });

  const dca::cell::CellId center =
      static_cast<dca::cell::CellId>(grid.n_cells() / 2 + cfg.cols / 2);
  const auto neighbours = grid.interference(center);
  constexpr std::uint64_t kMessages = 1'000'000;
  constexpr std::uint64_t kBatch = 64;
  dca::net::Message msg;
  msg.kind = dca::net::MsgKind::kRequest;
  msg.from = center;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  while (sent < kMessages) {
    for (std::uint64_t b = 0; b < kBatch && sent < kMessages; ++b, ++sent) {
      msg.to = neighbours[sent % neighbours.size()];
      net.send(msg);
    }
    sim.run_to_quiescence();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (delivered != kMessages) std::abort();  // FIFO floor must not drop any
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(kMessages);
}

struct Breakdown {
  double queue_ns_per_event = 0.0;
  double transport_ns_per_message = 0.0;
  double messages_per_sec = 0.0;
  double transport_share = 0.0;
  double queue_share = 0.0;
  double protocol_share = 0.0;
};

Breakdown transport_breakdown(const dca::runner::ScenarioConfig& cfg,
                              const Measurement& classic) {
  Breakdown b;
  b.queue_ns_per_event = measure_queue_ns_per_event();
  b.transport_ns_per_message = measure_transport_ns_per_message(cfg);
  const double wall_ns = classic.wall_s * 1e9;
  if (wall_ns <= 0) return b;
  const double msgs = static_cast<double>(classic.messages);
  const double other_events =
      static_cast<double>(classic.events) - msgs;  // non-delivery events
  b.messages_per_sec = msgs / classic.wall_s;
  b.transport_share = msgs * b.transport_ns_per_message / wall_ns;
  b.queue_share = other_events * b.queue_ns_per_event / wall_ns;
  b.protocol_share = 1.0 - b.transport_share - b.queue_share;
  if (b.protocol_share < 0) b.protocol_share = 0;
  return b;
}

/// Cross-shard protocol messages under a given partition on the 12x12
/// comparison scenario. Simulation outputs are bit-identical either way;
/// only this engine-cost metric moves.
std::uint64_t cross_shard_count(dca::cell::Partition p) {
  dca::runner::ScenarioConfig c = bench_config();
  c.rows = 12;
  c.cols = 12;
  c.duration = dca::sim::seconds(30);
  c.shards = 4;
  c.partition = p;
  const RunResult r = dca::runner::run_uniform(c, Scheme::kAdaptive, 0.9);
  return r.cross_shard_messages;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string git_rev() {
  std::string rev = "unknown";
  if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p)) {
      rev.assign(buf);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r'))
        rev.pop_back();
    }
    pclose(p);
    if (rev.empty()) rev = "unknown";
  }
  return rev;
}

std::string read_file(const char* path) {
  std::string out;
  if (FILE* f = std::fopen(path, "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

/// Appends `entry` (a JSON object) to the trajectory array in `path`.
/// Handles three prior states: missing/empty file, a legacy single-object
/// file (wrapped into a one-element array first), and an existing array.
bool append_trajectory(const char* path, const std::string& entry) {
  std::string prior = read_file(path);
  // Trim trailing whitespace so we can splice before the closing bracket.
  while (!prior.empty() && std::isspace(static_cast<unsigned char>(prior.back())))
    prior.pop_back();

  std::string merged;
  if (prior.empty()) {
    merged = "[\n" + entry + "\n]";
  } else if (prior.front() == '[' && prior.back() == ']') {
    prior.pop_back();
    while (!prior.empty() && std::isspace(static_cast<unsigned char>(prior.back())))
      prior.pop_back();
    const bool was_empty_array = prior == "[";
    merged = prior + (was_empty_array ? "\n" : ",\n") + entry + "\n]";
  } else {
    // Legacy single-object format: preserve it as the first entry.
    merged = "[\n" + prior + ",\n" + entry + "\n]";
  }

  FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fwrite(merged.data(), 1, merged.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int shards_n = 4;
  double rho = 0.9;
  std::vector<std::string> scheme_filter;
  std::vector<std::string> policy_filter;
  const auto split_csv = [](const char* list_text,
                            std::vector<std::string>& out) {
    std::string list(list_text);
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string name =
          list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      if (!name.empty()) out.push_back(name);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--rho=", 6) == 0) {
      rho = std::atof(arg + 6);
      if (rho <= 0) {
        std::fprintf(stderr, "engine_bench: bad --rho value '%s'\n", arg + 6);
        return 2;
      }
    } else if (std::strncmp(arg, "--schemes=", 10) == 0) {
      split_csv(arg + 10, scheme_filter);
    } else if (std::strncmp(arg, "--policies=", 11) == 0) {
      split_csv(arg + 11, policy_filter);
    } else if (std::isdigit(static_cast<unsigned char>(arg[0]))) {
      shards_n = std::atoi(arg);  // legacy positional shard count
    } else {
      std::fprintf(stderr,
                   "usage: engine_bench [shards] [--schemes=a,b] "
                   "[--policies=p,q] [--rho=X]\n"
                   "  schemes: adaptive basic_search (default: both)\n"
                   "  policies: registry specs, e.g. default or "
                   "tuned-threshold(theta_low=3,theta_high=6)\n"
                   "    (default: default only, so trajectory keys stay "
                   "comparable run over run)\n");
      return 2;
    }
  }
  if (shards_n < 2) shards_n = 2;

  // Resolve policy specs up front: reject typos before burning bench time,
  // and record the canonical describe() string (defaults filled in).
  if (policy_filter.empty()) policy_filter.push_back("default");
  struct PolicyChoice {
    dca::proto::PolicySpec spec;
    std::string desc;
  };
  std::vector<PolicyChoice> policy_choices;
  for (const std::string& text : policy_filter) {
    PolicyChoice pc;
    std::string perr;
    if (!dca::proto::parse_policy_spec(text, pc.spec, perr)) {
      std::fprintf(stderr, "engine_bench: %s\n", perr.c_str());
      return 2;
    }
    const auto policy =
        dca::proto::PolicyRegistry::instance().make(pc.spec, perr);
    if (policy == nullptr) {
      std::fprintf(stderr, "engine_bench: %s\n", perr.c_str());
      return 2;
    }
    pc.desc = policy->describe();
    policy_choices.push_back(std::move(pc));
  }

  dca::benchutil::heading("engine throughput: classic vs sharded");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, sharded run uses shards=%d, rho=%.2f\n\n",
              hw, shards_n, rho);

  const struct {
    Scheme scheme;
    const char* name;
  } kSchemes[] = {
      {Scheme::kAdaptive, "adaptive"},
      {Scheme::kBasicSearch, "basic_search"},
  };
  const auto scheme_selected = [&scheme_filter](const char* name) {
    if (scheme_filter.empty()) return true;
    for (const std::string& s : scheme_filter) {
      if (s == name) return true;
    }
    return false;
  };

  std::vector<Measurement> results;
  for (const auto& s : kSchemes) {
    if (!scheme_selected(s.name)) continue;
    for (const PolicyChoice& pc : policy_choices) {
      dca::runner::ScenarioConfig c1 = bench_config();
      c1.policy = pc.spec;
      c1.shards = 1;
      results.push_back(measure(c1, s.scheme, s.name, pc.desc, rho));

      dca::runner::ScenarioConfig cn = bench_config();
      cn.policy = pc.spec;
      cn.shards = shards_n;
      cn.threads = 0;  // one worker per shard, capped by the hardware
      results.push_back(measure(cn, s.scheme, s.name, pc.desc, rho));

      const double base = results[results.size() - 2].events_per_sec;
      const double par = results.back().events_per_sec;
      std::printf("  %-14s speedup: %.2fx\n\n", s.name,
                  base > 0 ? par / base : 0.0);
    }
  }
  if (results.empty()) {
    std::fprintf(stderr, "engine_bench: --schemes matched nothing\n");
    return 2;
  }

  // Where the wall time goes on the classic (shards=1) engine: micro-timed
  // per-event queue cost and per-message transport cost, scaled by the
  // first scheme's classic run.
  dca::benchutil::heading("transport-layer breakdown (classic engine)");
  const Measurement& classic = results.front();
  const Breakdown bd = transport_breakdown(bench_config(), classic);
  std::printf("queue dispatch: %6.1f ns/event   transport send+deliver: %6.1f ns/message\n",
              bd.queue_ns_per_event, bd.transport_ns_per_message);
  std::printf("%s classic run: %.0f messages/s  ->  est. shares: transport %.1f%%  queue %.1f%%  protocol %.1f%%\n",
              classic.scheme.c_str(), bd.messages_per_sec,
              100.0 * bd.transport_share, 100.0 * bd.queue_share,
              100.0 * bd.protocol_share);

  // Link-table shape of the bench grid (recorded with the trajectory so
  // regressions can be traced to topology changes).
  const dca::runner::ScenarioConfig shape = bench_config();
  const dca::cell::HexGrid bench_grid(shape.rows, shape.cols,
                                      shape.interference_radius, shape.wrap);
  const dca::net::LinkTable bench_links(bench_grid);

  // Partition engine-cost comparison: same simulation, different cell->
  // shard maps. Blocks should need far fewer cross-shard messages than
  // stripes because interference neighbourhoods are geometrically local.
  dca::benchutil::heading("cross-shard messages: striped vs blocks (12x12, shards=4)");
  const std::uint64_t xs_striped = cross_shard_count(dca::cell::Partition::kStriped);
  const std::uint64_t xs_blocks = cross_shard_count(dca::cell::Partition::kBlocks);
  const double xs_ratio =
      xs_striped > 0 ? static_cast<double>(xs_blocks) / static_cast<double>(xs_striped)
                     : 0.0;
  std::printf("striped=%llu blocks=%llu  blocks/striped=%.3f\n",
              static_cast<unsigned long long>(xs_striped),
              static_cast<unsigned long long>(xs_blocks), xs_ratio);

  // Mobility/handoff throughput: the same scenario with short dwells, so
  // nearly every call migrates several times. Handoffs ride HANDOFF
  // messages over the ordinary links — on the sharded engine many cross a
  // shard boundary, so this measures the migration machinery's cost and
  // its cross-shard traffic, classic vs sharded.
  dca::benchutil::heading("mobility/handoff: events/sec and cross-shard messages");
  struct MobilityRun {
    int shards = 1;
    double wall_s = 0.0;
    std::uint64_t events = 0;
    double events_per_sec = 0.0;
    std::uint64_t cross_shard = 0;
    std::uint64_t handoff_messages = 0;
    std::uint64_t handoffs_offered = 0;
  };
  const double kBenchDwellS = 3.0;  // mean holding 5 s => ~1-2 hops per call
  std::vector<MobilityRun> mobility_runs;
  for (const int shards : {1, shards_n}) {
    dca::runner::ScenarioConfig mc = bench_config();
    mc.mean_dwell_s = kBenchDwellS;
    mc.shards = shards;
    mc.threads = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = dca::runner::run_uniform(mc, Scheme::kAdaptive, rho);
    const auto t1 = std::chrono::steady_clock::now();
    MobilityRun mr;
    mr.shards = shards;
    mr.wall_s = std::chrono::duration<double>(t1 - t0).count();
    mr.events = r.executed_events;
    mr.events_per_sec =
        mr.wall_s > 0 ? static_cast<double>(mr.events) / mr.wall_s : 0.0;
    mr.cross_shard = r.cross_shard_messages;
    mr.handoff_messages = r.messages_by_kind[static_cast<std::size_t>(
        dca::net::MsgKind::kHandoff)];
    mr.handoffs_offered = r.agg.handoff_offered;
    mobility_runs.push_back(mr);
    std::printf("  adaptive+mobility shards=%d  %9.3f s  %12.0f ev/s  "
                "handoff_msgs=%llu cross_shard=%llu handoffs=%llu\n",
                shards, mr.wall_s, mr.events_per_sec,
                static_cast<unsigned long long>(mr.handoff_messages),
                static_cast<unsigned long long>(mr.cross_shard),
                static_cast<unsigned long long>(mr.handoffs_offered));
  }

  // Crash-recovery overhead: the bench scenario with the crash fault model
  // on (stations failing ~1/min, cold restarts, resync), classic vs
  // sharded. Alongside throughput the trajectory records the availability
  // metrics — uptime fraction and mean time-to-resync — so a protocol
  // change that slows recovery shows up run over run.
  dca::benchutil::heading("crash-recovery: events/sec and availability");
  struct CrashRun {
    int shards = 1;
    double wall_s = 0.0;
    std::uint64_t events = 0;
    double events_per_sec = 0.0;
    std::uint64_t crashes = 0;
    double uptime_fraction = 1.0;
    double mttr_s = 0.0;
    std::uint64_t violations = 0;
  };
  std::vector<CrashRun> crash_runs;
  for (const int shards : {1, shards_n}) {
    dca::runner::ScenarioConfig kc = bench_config();
    kc.fault.crash_rate_per_min = 1.0;
    kc.fault.crash_mean_s = 2.0;
    kc.shards = shards;
    kc.threads = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = dca::runner::run_uniform(kc, Scheme::kAdaptive, rho);
    const auto t1 = std::chrono::steady_clock::now();
    CrashRun cr;
    cr.shards = shards;
    cr.wall_s = std::chrono::duration<double>(t1 - t0).count();
    cr.events = r.executed_events;
    cr.events_per_sec =
        cr.wall_s > 0 ? static_cast<double>(cr.events) / cr.wall_s : 0.0;
    cr.crashes = r.availability.crashes;
    cr.uptime_fraction =
        r.availability.uptime_fraction(kc.duration, kc.rows * kc.cols);
    cr.mttr_s = r.availability.mean_time_to_resync_s();
    cr.violations = r.violations;
    crash_runs.push_back(cr);
    std::printf("  adaptive+crashes shards=%d  %9.3f s  %12.0f ev/s  "
                "crashes=%llu uptime=%.4f mttr=%.2fs violations=%llu\n",
                shards, cr.wall_s, cr.events_per_sec,
                static_cast<unsigned long long>(cr.crashes),
                cr.uptime_fraction, cr.mttr_s,
                static_cast<unsigned long long>(cr.violations));
  }

  // Multi-core scaling curve: the same scenario across shards x threads,
  // workers pinned to distinct allowed CPUs. Results are bit-identical at
  // every point (the determinism contract), so only wall-clock moves; the
  // curve is honest by construction — on a 1-CPU box every threads > 1
  // point just measures oversubscription, and hardware_threads recorded
  // alongside says so.
  dca::benchutil::heading("scaling curve: shards x threads (pinned)");
  struct ScalePoint {
    int shards = 1;
    int threads = 1;
    double wall_s = 0.0;
    std::uint64_t events = 0;
    double events_per_sec = 0.0;
  };
  std::vector<ScalePoint> scale_points;
  for (const int shards : {1, 2, 4, 8}) {
    for (const int threads : {1, 2, 4, 8}) {
      if (threads > shards) continue;  // extra workers would idle
      dca::runner::ScenarioConfig sc = bench_config();
      sc.shards = shards;
      sc.threads = threads;
      sc.pin = true;
      // shards=1 must still exercise the sharded engine (the classic one
      // has no workers to scale); stream_metrics routes it there.
      sc.stream_metrics = shards == 1;
      const auto t0 = std::chrono::steady_clock::now();
      const RunResult r = dca::runner::run_uniform(sc, Scheme::kAdaptive, rho);
      const auto t1 = std::chrono::steady_clock::now();
      ScalePoint p;
      p.shards = shards;
      p.threads = resolved_workers(sc);
      p.wall_s = std::chrono::duration<double>(t1 - t0).count();
      p.events = r.executed_events;
      p.events_per_sec =
          p.wall_s > 0 ? static_cast<double>(p.events) / p.wall_s : 0.0;
      scale_points.push_back(p);
      std::printf("  shards=%d threads=%d  %9.3f s  %12.0f ev/s\n", p.shards,
                  p.threads, p.wall_s, p.events_per_sec);
    }
  }

  // Metro-scale memory: a 60x60 streaming run records peak RSS per cell —
  // the budget the metro smoke test gates on. Process-wide high-water, so
  // it is an upper bound (earlier bench sections allocated too), but this
  // run's working set dominates the process by an order of magnitude.
  dca::benchutil::heading("metro memory: 60x60 streaming, peak RSS per cell");
  dca::runner::ScenarioConfig metro = bench_config();
  metro.rows = 60;
  metro.cols = 60;
  metro.duration = dca::sim::seconds(30);
  metro.warmup = dca::sim::seconds(5);
  metro.shards = shards_n;
  metro.stream_metrics = true;
  const auto metro_t0 = std::chrono::steady_clock::now();
  const RunResult metro_r = dca::runner::run_uniform(metro, Scheme::kAdaptive, rho);
  const auto metro_t1 = std::chrono::steady_clock::now();
  const double metro_wall =
      std::chrono::duration<double>(metro_t1 - metro_t0).count();
  const std::int64_t metro_cells = metro.rows * metro.cols;
  const double metro_bytes_per_cell =
      static_cast<double>(metro_r.peak_rss_bytes) /
      static_cast<double>(metro_cells);
  std::printf("  %lldx cells  %9.3f s  offered=%llu  peak_rss=%.1f MiB  %.0f bytes/cell\n",
              static_cast<long long>(metro_cells), metro_wall,
              static_cast<unsigned long long>(metro_r.offered_calls),
              static_cast<double>(metro_r.peak_rss_bytes) / (1024.0 * 1024.0),
              metro_bytes_per_cell);

  // Determinism sanity for the record: events/sec means nothing if the
  // sharded engine diverged. The merged trace must satisfy every
  // conformance invariant (incl. reuse-distance, which substitutes for
  // the cross-shard half of the online Theorem-1 check).
  dca::benchutil::heading("conformance of the merged sharded trace");
  dca::runner::ScenarioConfig cc = bench_config();
  cc.shards = shards_n;
  dca::sim::TraceRecorder rec;
  const RunResult traced =
      dca::runner::run_uniform(cc, Scheme::kAdaptive, rho, &rec);
  const dca::cell::HexGrid grid(cc.rows, cc.cols, cc.interference_radius,
                                cc.wrap);
  const auto report =
      dca::runner::check_trace(grid, cc.n_channels, rec.events());
  std::printf("events=%llu quiescent=%d -> %s\n",
              static_cast<unsigned long long>(report.events),
              traced.quiescent ? 1 : 0,
              report.ok() ? "OK" : report.to_string().c_str());

  dca::metrics::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("engine");
  w.key("timestamp_utc");
  w.value(utc_timestamp());
  w.key("git_rev");
  w.value(git_rev());
  w.key("hardware_threads");
  w.value(static_cast<std::int64_t>(hw));
  w.key("rho");
  w.value(rho);
  w.key("conformance_ok");
  w.value(report.ok());
  w.key("link_table");
  w.begin_object();
  w.key("links");
  w.value(static_cast<std::int64_t>(bench_links.n_links()));
  w.key("max_degree");
  w.value(static_cast<std::int64_t>(bench_grid.max_interference_degree()));
  w.end_object();
  w.key("transport_breakdown");
  w.begin_object();
  w.key("queue_ns_per_event");
  w.value(bd.queue_ns_per_event);
  w.key("transport_ns_per_message");
  w.value(bd.transport_ns_per_message);
  w.key("classic_scheme");
  w.value(classic.scheme);
  w.key("messages_per_sec");
  w.value(bd.messages_per_sec);
  w.key("transport_share");
  w.value(bd.transport_share);
  w.key("queue_share");
  w.value(bd.queue_share);
  w.key("protocol_share");
  w.value(bd.protocol_share);
  w.end_object();
  w.key("results");
  w.begin_array();
  for (const auto& m : results) {
    w.begin_object();
    w.key("scheme");
    w.value(m.scheme);
    w.key("policy");
    w.value(m.policy);
    w.key("shards");
    w.value(m.shards);
    w.key("threads");
    w.value(m.threads);
    w.key("hardware_threads");
    w.value(static_cast<std::int64_t>(hw));
    w.key("partition");
    w.value(m.partition);
    w.key("wall_s");
    w.value(m.wall_s);
    w.key("events");
    w.value(m.events);
    w.key("messages");
    w.value(m.messages);
    w.key("events_per_sec");
    w.value(m.events_per_sec);
    w.end_object();
  }
  w.end_array();
  w.key("mobility");
  w.begin_object();
  w.key("scheme");
  w.value("adaptive");
  w.key("mean_dwell_s");
  w.value(kBenchDwellS);
  w.key("runs");
  w.begin_array();
  for (const auto& mr : mobility_runs) {
    w.begin_object();
    w.key("shards");
    w.value(mr.shards);
    w.key("wall_s");
    w.value(mr.wall_s);
    w.key("events");
    w.value(mr.events);
    w.key("events_per_sec");
    w.value(mr.events_per_sec);
    w.key("cross_shard_messages");
    w.value(mr.cross_shard);
    w.key("handoff_messages");
    w.value(mr.handoff_messages);
    w.key("handoffs_offered");
    w.value(mr.handoffs_offered);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("crash_recovery");
  w.begin_object();
  w.key("scheme");
  w.value("adaptive");
  w.key("crash_rate_per_min");
  w.value(1.0);
  w.key("crash_mean_s");
  w.value(2.0);
  w.key("runs");
  w.begin_array();
  for (const auto& cr : crash_runs) {
    w.begin_object();
    w.key("shards");
    w.value(cr.shards);
    w.key("wall_s");
    w.value(cr.wall_s);
    w.key("events");
    w.value(cr.events);
    w.key("events_per_sec");
    w.value(cr.events_per_sec);
    w.key("crashes");
    w.value(cr.crashes);
    w.key("uptime_fraction");
    w.value(cr.uptime_fraction);
    w.key("mean_time_to_resync_s");
    w.value(cr.mttr_s);
    w.key("violations");
    w.value(cr.violations);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("scaling_curve");
  w.begin_object();
  w.key("grid");
  w.value("16x16");
  w.key("scheme");
  w.value("adaptive");
  w.key("pinned");
  w.value(true);
  w.key("hardware_threads");
  w.value(static_cast<std::int64_t>(hw));
  w.key("points");
  w.begin_array();
  for (const auto& p : scale_points) {
    w.begin_object();
    w.key("shards");
    w.value(p.shards);
    w.key("threads");
    w.value(p.threads);
    w.key("wall_s");
    w.value(p.wall_s);
    w.key("events");
    w.value(p.events);
    w.key("events_per_sec");
    w.value(p.events_per_sec);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("metro_memory");
  w.begin_object();
  w.key("grid");
  w.value("60x60");
  w.key("scheme");
  w.value("adaptive");
  w.key("stream_metrics");
  w.value(true);
  w.key("shards");
  w.value(metro.shards);
  w.key("duration_s");
  w.value(dca::sim::to_seconds(metro.duration));
  w.key("offered_calls");
  w.value(metro_r.offered_calls);
  w.key("wall_s");
  w.value(metro_wall);
  w.key("peak_rss_bytes");
  w.value(metro_r.peak_rss_bytes);
  w.key("bytes_per_cell");
  w.value(metro_bytes_per_cell);
  w.end_object();
  w.key("partition_comparison");
  w.begin_object();
  w.key("grid");
  w.value("12x12");
  w.key("shards");
  w.value(std::int64_t{4});
  w.key("scheme");
  w.value("adaptive");
  w.key("striped_cross_shard_messages");
  w.value(xs_striped);
  w.key("blocks_cross_shard_messages");
  w.value(xs_blocks);
  w.key("blocks_over_striped");
  w.value(xs_ratio);
  w.end_object();
  w.end_object();

  if (append_trajectory("BENCH_engine.json", w.str())) {
    std::printf("\nappended trajectory entry to BENCH_engine.json\n");
  } else {
    std::fprintf(stderr, "engine_bench: cannot write BENCH_engine.json\n");
    return 1;
  }
  return report.ok() ? 0 : 1;
}
