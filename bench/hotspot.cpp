// E-S2 — The temporary hot-spot scenario from the paper's introduction:
// "in case of even temporary hot spots many calls may be dropped by a
// heavily loaded switching station even when there are enough idle
// channels in the interference region of that station."
//
// One central cell runs at `hot_factor` times the light base load for a
// bounded window. We report, per scheme: drop rate at the hot cell vs
// elsewhere, acquisition time, message cost, and how the adaptive
// acquisitions split across local/update/search.
#include <cstdio>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "metrics/timeseries.hpp"
#include "runner/world.hpp"
#include "traffic/generator.hpp"
#include "traffic/profile.hpp"

int main() {
  using namespace dca;
  using metrics::Table;
  using runner::Scheme;

  auto cfg = benchutil::paper_config();
  cfg.duration = sim::minutes(24);
  cfg.warmup = sim::minutes(2);
  const double rho_base = 0.15;
  const double hot_factor = 10.0;
  const auto hot_start = sim::minutes(6);
  const auto hot_end = sim::minutes(18);
  const cell::CellId hot_cell = (cfg.rows / 2) * cfg.cols + cfg.cols / 2;

  benchutil::heading("Hot-spot scenario: one cell at 10x base load for 12 minutes");
  std::printf("base rho = %.2f, hot cell = %d, hot window = [6, 18] min\n\n",
              rho_base, hot_cell);

  Table t({"Scheme", "drop% hot cell", "drop% elsewhere", "mean AcqT [T]",
           "msgs/call", "xi1/xi2/xi3"});

  for (const Scheme s : runner::kAllSchemes) {
    runner::World w(cfg, s);
    const traffic::HotspotProfile profile(cfg.arrival_rate_for_load(rho_base),
                                          {hot_cell}, hot_factor, hot_start,
                                          hot_end);
    traffic::TrafficSource src(
        w.simulator(), w.grid(), profile, cfg.mean_holding_s, cfg.seed,
        [&w](const traffic::CallSpec& spec) { w.submit_call(spec); });
    src.start(cfg.duration);
    w.simulator().run_to_quiescence();

    if (w.interference_violations() != 0 || !w.quiescent()) {
      std::fprintf(stderr, "INVARIANT FAILURE in %s\n",
                   runner::scheme_name(s).c_str());
      return 1;
    }

    std::uint64_t hot_off = 0, hot_drop = 0, oth_off = 0, oth_drop = 0;
    for (const auto& rec : w.collector().records()) {
      if (rec.t_request < cfg.warmup) continue;
      const bool hot = (rec.cellId == hot_cell);
      (hot ? hot_off : oth_off)++;
      if (!proto::is_acquired(rec.outcome)) (hot ? hot_drop : oth_drop)++;
    }
    const auto agg = w.collector().aggregate(w.latency_bound(), cfg.warmup);
    char xi[64];
    std::snprintf(xi, sizeof xi, "%.2f/%.2f/%.2f", agg.xi1, agg.xi2, agg.xi3);
    const auto pct = [](std::uint64_t d, std::uint64_t n) {
      return n ? 100.0 * static_cast<double>(d) / static_cast<double>(n) : 0.0;
    };
    t.add_row({runner::scheme_name(s), Table::num(pct(hot_drop, hot_off), 2),
               Table::num(pct(oth_drop, oth_off), 2),
               Table::num(agg.delay_in_T.mean(), 3),
               Table::num(agg.messages_per_call.mean(), 1), xi});
  }
  std::printf("%s\n", t.render().c_str());

  // ---- transient timeline (figure-style): per-2-minute drop% at the hot
  // cell, FCA vs adaptive, through the burst ------------------------------
  benchutil::heading(
      "Hot-cell drop rate over time (2-minute buckets; burst at minutes 6-18)");
  const Scheme timeline_schemes[] = {Scheme::kFca, Scheme::kAdaptive};
  std::vector<metrics::TimeSeries> dropped_series;
  std::vector<metrics::TimeSeries> offered_series;
  for (const Scheme s : timeline_schemes) {
    runner::World w(cfg, s);
    const traffic::HotspotProfile profile(cfg.arrival_rate_for_load(rho_base),
                                          {hot_cell}, hot_factor, hot_start,
                                          hot_end);
    traffic::TrafficSource src(
        w.simulator(), w.grid(), profile, cfg.mean_holding_s, cfg.seed,
        [&w](const traffic::CallSpec& spec) { w.submit_call(spec); });
    src.start(cfg.duration);
    w.simulator().run_to_quiescence();
    metrics::TimeSeries dropped(sim::minutes(2));
    metrics::TimeSeries offered(sim::minutes(2));
    for (const auto& rec : w.collector().records()) {
      if (rec.cellId != hot_cell) continue;
      offered.add(rec.t_request, 1.0);
      if (!proto::is_acquired(rec.outcome)) dropped.add(rec.t_request, 1.0);
    }
    dropped_series.push_back(dropped);
    offered_series.push_back(offered);
  }
  Table tl({"minute", "offered (FCA)", "drop% FCA", "drop% Adaptive", "burst?"});
  const std::size_t buckets = offered_series[0].n_buckets();
  for (std::size_t b = 0; b < buckets; ++b) {
    const auto start_min =
        static_cast<int>(offered_series[0].bucket_start(b) / sim::minutes(1));
    const auto pct = [&](std::size_t k) {
      const double off = k < offered_series.size() &&
                                 b < offered_series[k].n_buckets()
                             ? offered_series[k].sum(b)
                             : 0.0;
      const double drop =
          k < dropped_series.size() && b < dropped_series[k].n_buckets()
              ? dropped_series[k].sum(b)
              : 0.0;
      return off > 0 ? 100.0 * drop / off : 0.0;
    };
    const bool in_burst = offered_series[0].bucket_start(b) >= hot_start &&
                          offered_series[0].bucket_start(b) < hot_end;
    tl.add_row({std::to_string(start_min) + "-" + std::to_string(start_min + 2),
                Table::num(offered_series[0].sum(b), 0), Table::num(pct(0), 1),
                Table::num(pct(1), 1), in_burst ? "***" : ""});
  }
  std::printf("%s\n", tl.render().c_str());

  benchutil::note(
      "Shape checks: FCA drops a large share of hot-cell calls although the\n"
      "neighbourhood is nearly idle; every dynamic scheme rescues them by\n"
      "borrowing; the adaptive scheme does so while neighbours outside the\n"
      "hot region keep operating in message-free local mode (high xi1).\n"
      "The timeline shows FCA's drops tracking the burst while the adaptive\n"
      "scheme rides through it.");
  return 0;
}
