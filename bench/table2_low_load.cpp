// E-T2 — Reproduction of the paper's Table 2: "Comparison of Different
// Algorithms under Low Load".
//
// Paper's claim (N = interference degree, T = one-way latency):
//
//   | Algorithm           | Message Complexity | Channel Acquisition |
//   |---------------------|--------------------|---------------------|
//   | Basic Search        | 2N                 | 2T                  |
//   | Basic Update        | 4N                 | 2T                  |
//   | Advanced Update     | 2N                 | 0                   |
//   | Adaptive (Proposed) | 0                  | 0                   |
//
// We print the analytic row and, next to it, the same quantities measured
// from a uniformly low-load simulation (rho = 0.1 Erlang/cell normalized
// to the primary pool). Note on basic search: the measured count includes
// the decision announcement the handshake needs for safety (~3N); the
// paper charges only request+response (2N). See DESIGN.md note 6.
#include <cstdio>

#include "analysis/formulas.hpp"
#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace dca;
  using metrics::Table;
  using runner::Scheme;

  auto cfg = benchutil::paper_config();
  const double rho = 0.1;

  benchutil::heading("Table 2: comparison under uniformly low load (rho = 0.1)");
  std::printf("grid %dx%d, %d channels, cluster %d, T = %.1f ms, N = 18 interior\n\n",
              cfg.rows, cfg.cols, cfg.n_channels, cfg.cluster,
              sim::to_milliseconds(cfg.latency));

  analysis::ModelParams mp;  // Table 2 premises; N = 18
  mp.N = 18;

  Table t({"Algorithm", "Msg paper", "Msg measured", "AcqT paper [T]",
           "AcqT measured [T]", "drop%"});

  const struct Row {
    Scheme scheme;
    const char* name;
    analysis::Cost paper;
  } rows[] = {
      {Scheme::kBasicSearch, "Basic Search", analysis::basic_search_low_load(mp)},
      {Scheme::kBasicUpdate, "Basic Update", analysis::basic_update_low_load(mp)},
      {Scheme::kAdvancedUpdate, "Advanced Update",
       analysis::advanced_update_low_load(mp)},
      {Scheme::kAdaptive, "Adaptive (Proposed)", analysis::adaptive_low_load(mp)},
  };

  for (const auto& row : rows) {
    const runner::RunResult r = runner::run_uniform(cfg, row.scheme, rho);
    if (r.violations != 0 || !r.quiescent) {
      std::fprintf(stderr, "INVARIANT FAILURE in %s\n", row.name);
      return 1;
    }
    t.add_row({row.name, Table::num(row.paper.messages, 0),
               Table::num(r.agg.messages_per_call.mean(), 1),
               Table::num(row.paper.time_in_T, 0),
               Table::num(r.agg.delay_in_T.mean(), 2),
               Table::num(100.0 * r.agg.drop_rate(), 2)});
  }
  std::printf("%s\n", t.render().c_str());

  benchutil::note(
      "Measured means on the bounded 8x8 grid track the formulas with the\n"
      "grid's MEAN interference degree (~13.6) rather than the interior\n"
      "N = 18 — boundary cells have smaller neighbourhoods.");

  // ---- boundary-free verification on a torus -----------------------------
  // With wraparound, every cell has exactly N = 18 interference neighbours
  // and the measured costs match the closed forms exactly.
  benchutil::heading("Table 2 on a 14x14 torus (every cell sees N = 18)");
  auto torus = cfg;
  torus.rows = 14;
  torus.cols = 14;
  torus.wrap = cell::Wrap::kToroidal;

  Table tt({"Algorithm", "Msg paper", "Msg measured", "AcqT paper [T]",
            "AcqT measured [T]"});
  for (const auto& row : rows) {
    const runner::RunResult r = runner::run_uniform(torus, row.scheme, rho);
    if (r.violations != 0 || !r.quiescent) {
      std::fprintf(stderr, "INVARIANT FAILURE in %s (torus)\n", row.name);
      return 1;
    }
    tt.add_row({row.name, Table::num(row.paper.messages, 0),
                Table::num(r.agg.messages_per_call.mean(), 1),
                Table::num(row.paper.time_in_T, 0),
                Table::num(r.agg.delay_in_T.mean(), 2)});
  }
  std::printf("%s\n", tt.render().c_str());

  benchutil::note(
      "Shape check: adaptive ~0 messages and ~0 acquisition time; advanced\n"
      "update pays broadcasts but no latency; search/update pay a 2T round\n"
      "trip on every call. Basic-search measured includes the decision\n"
      "announcement (3N = 54 vs the paper's 2N accounting).");
  return 0;
}
