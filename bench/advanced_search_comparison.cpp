// E-S4 — The Section 6 comparison against the advanced search scheme of
// Prakash, Shivaratri & Singhal [8].
//
// The paper's argument: [8] also adapts to load (a cell keeps channels it
// pulled in, so transient hot spots are served from the allocated set),
// but once the allocated pool is exhausted a channel must be *transferred*
// — TRANSFER/AGREE/KEEP legs on top of the 2N search, and possibly several
// rounds when owners refuse — whereas the adaptive scheme moves a channel
// in a single borrowing round. We drive both schemes (plus basic search as
// the common ancestor) through:
//
//   phase 1  a hot spot that RETURNS periodically at the same cell — the
//            regime [8] is designed for (retention pays off);
//   phase 2  a hot spot that MOVES across the grid each burst — retention
//            keeps channels where load no longer is, forcing transfers.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "metrics/table.hpp"
#include "proto/advanced_search.hpp"
#include "runner/world.hpp"
#include "traffic/generator.hpp"
#include "traffic/profile.hpp"

namespace {

using namespace dca;
using metrics::Table;
using runner::Scheme;

struct Phase {
  const char* title;
  std::vector<cell::CellId> hot_cells;  // one per burst, cycled
};

struct Result {
  metrics::Aggregate agg;
  std::uint64_t transfer_msgs = 0;
  std::uint64_t transfers = 0;
  std::uint64_t denials = 0;
};

// A profile with a sequence of 2-minute bursts, each centred on one cell.
class BurstProfile final : public traffic::LoadProfile {
 public:
  BurstProfile(double base, double hot, std::vector<cell::CellId> cells,
               sim::Duration burst_len)
      : base_(base), hot_(hot), cells_(std::move(cells)), len_(burst_len) {}

  [[nodiscard]] double rate(cell::CellId c, sim::SimTime t) const override {
    const auto idx = static_cast<std::size_t>(t / len_);
    if (idx < cells_.size() && cells_[idx] == c) return hot_;
    return base_;
  }
  [[nodiscard]] double max_rate(cell::CellId c) const override {
    for (const cell::CellId h : cells_)
      if (h == c) return hot_;
    return base_;
  }

 private:
  double base_;
  double hot_;
  std::vector<cell::CellId> cells_;
  sim::Duration len_;
};

Result run_phase(Scheme scheme, const runner::ScenarioConfig& cfg,
                 const BurstProfile& profile) {
  runner::World w(cfg, scheme);
  traffic::TrafficSource src(
      w.simulator(), w.grid(), profile, cfg.mean_holding_s, cfg.seed,
      [&w](const traffic::CallSpec& spec) { w.submit_call(spec); });
  src.start(cfg.duration);
  w.simulator().run_to_quiescence();
  if (w.interference_violations() != 0 || !w.quiescent()) {
    std::fprintf(stderr, "INVARIANT FAILURE in %s\n",
                 runner::scheme_name(scheme).c_str());
    std::exit(1);
  }
  Result out;
  out.agg = w.collector().aggregate(w.latency_bound(), cfg.warmup);
  out.transfer_msgs = w.network().sent_of(net::MsgKind::kTransfer);
  if (scheme == Scheme::kAdvancedSearch) {
    for (cell::CellId c = 0; c < w.grid().n_cells(); ++c) {
      const auto& n = dynamic_cast<const proto::AdvancedSearchNode&>(w.node(c));
      out.transfers += n.transfers_in();
      out.denials += n.transfer_denials();
    }
  }
  return out;
}

}  // namespace

int main() {
  auto cfg = benchutil::paper_config();
  cfg.duration = sim::minutes(24);
  cfg.warmup = sim::minutes(2);
  // A tighter spectrum (35 channels, |PR| = 5) plus a strong hot spot:
  // the regime where the region's unallocated pool actually runs dry and
  // [8] has to transfer channels rather than just allocate fresh ones.
  cfg.n_channels = 35;
  const double base_rate = cfg.arrival_rate_for_load(0.3);
  const double hot_rate = cfg.arrival_rate_for_load(3.0);
  const auto burst = sim::minutes(2);

  const cell::CellId center = (cfg.rows / 2) * cfg.cols + cfg.cols / 2;
  std::vector<cell::CellId> returning(12, center);
  std::vector<cell::CellId> moving;
  for (int i = 0; i < 12; ++i) {
    moving.push_back(((2 + (i % 4)) * cfg.cols) + 2 + ((i / 4) % 4) * 2);
  }

  const Phase phases[] = {
      {"Phase 1: hot spot returning to the same cell (retention-friendly)",
       returning},
      {"Phase 2: hot spot moving across the grid (retention hostile)", moving},
  };
  const Scheme schemes[] = {Scheme::kBasicSearch, Scheme::kAdvancedSearch,
                            Scheme::kAdaptive};

  for (const Phase& phase : phases) {
    benchutil::heading(phase.title);
    Table t({"Scheme", "drop%", "mean AcqT [T]", "msgs/call", "xi1",
             "transfer msgs", "transfers", "denials"});
    const BurstProfile profile(base_rate, hot_rate, phase.hot_cells, burst);
    for (const Scheme s : schemes) {
      const Result r = run_phase(s, cfg, profile);
      t.add_row({runner::scheme_name(s), Table::num(100 * r.agg.drop_rate(), 2),
                 Table::num(r.agg.delay_in_T.mean(), 3),
                 Table::num(r.agg.messages_per_call.mean(), 1),
                 Table::num(r.agg.xi1, 3), std::to_string(r.transfer_msgs),
                 std::to_string(r.transfers), std::to_string(r.denials)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  benchutil::note(
      "Shape checks (paper Section 6): both adaptive schemes serve repeat\n"
      "bursts far more cheaply than plain search (high xi1). When the hot\n"
      "spot keeps moving, [8] must transfer channels away from stale owners\n"
      "(extra TRANSFER legs and denials), while the adaptive scheme's\n"
      "single-round borrowing keeps cost flat.");
  return 0;
}
