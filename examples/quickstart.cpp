// Quickstart: build a simulated cellular network running the paper's
// adaptive channel-allocation scheme, drive Poisson call traffic through
// it, and read out the headline metrics.
//
//   $ ./quickstart [rho]
//
// The public API used here is the whole library surface a downstream user
// needs: ScenarioConfig -> run_uniform -> RunResult.
#include <cstdio>
#include <cstdlib>

#include "runner/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dca;

  // 1. Describe the system: an 8x8 hexagonal grid, 70 channels under a
  //    cluster-7 reuse plan (10 primaries per cell), 5 ms control-message
  //    latency, and the adaptive scheme's default tuning.
  runner::ScenarioConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.n_channels = 70;
  cfg.cluster = 7;
  cfg.latency = sim::milliseconds(5);
  cfg.duration = sim::minutes(15);
  cfg.warmup = sim::minutes(2);
  cfg.adaptive.theta_low = 2;    // enter borrowing below 2 predicted free primaries
  cfg.adaptive.theta_high = 4;   // return to local mode above 4
  cfg.adaptive.alpha = 3;        // update-mode attempts before searching

  // 2. Pick an offered load (Erlangs per cell, normalized to the primary
  //    pool) — 0.6 by default, first CLI argument otherwise.
  const double rho = argc > 1 ? std::atof(argv[1]) : 0.6;

  // 3. Run the paper's adaptive scheme under uniform Poisson traffic.
  const runner::RunResult r =
      runner::run_uniform(cfg, runner::Scheme::kAdaptive, rho);

  // 4. Read the results.
  std::printf("offered load            : %.2f Erlang/cell (normalized)\n", rho);
  std::printf("calls offered           : %llu\n",
              static_cast<unsigned long long>(r.agg.offered));
  std::printf("calls dropped           : %.2f %%\n", 100.0 * r.agg.drop_rate());
  std::printf("mean acquisition time   : %.3f T  (T = %.1f ms)\n",
              r.agg.delay_in_T.mean(), sim::to_milliseconds(cfg.latency));
  std::printf("control messages / call : %.2f\n", r.agg.messages_per_call.mean());
  std::printf("acquisition mix         : local %.1f%%  update %.1f%%  search %.1f%%\n",
              100 * r.agg.xi1, 100 * r.agg.xi2, 100 * r.agg.xi3);
  std::printf("co-channel violations   : %llu (must be 0)\n",
              static_cast<unsigned long long>(r.violations));
  std::printf("drained to quiescence   : %s\n", r.quiescent ? "yes" : "NO");
  return r.violations == 0 && r.quiescent ? 0 : 1;
}
