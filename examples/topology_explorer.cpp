// Topology explorer (paper Fig. 1): renders the hexagonal cellular grid,
// the cluster-7 reuse colouring, and one cell's interference region as
// ASCII art, and prints the static structure a reuse plan induces.
//
//   $ ./topology_explorer [rows cols [cell]]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cell/grid.hpp"
#include "cell/reuse.hpp"
#include "radio/signal.hpp"

int main(int argc, char** argv) {
  using namespace dca;

  const int rows = argc > 2 ? std::atoi(argv[1]) : 8;
  const int cols = argc > 2 ? std::atoi(argv[2]) : 8;
  const cell::HexGrid grid(rows, cols, /*interference_radius=*/2);
  const cell::CellId focus = argc > 3
                                 ? std::atoi(argv[3])
                                 : (rows / 2) * cols + cols / 2;
  const auto plan = cell::ReusePlan::cluster(grid, 70, 7);

  std::printf("Hexagonal cellular grid %dx%d (odd rows shifted right),\n", rows,
              cols);
  std::printf("minimum reuse distance 3 hops => interference radius 2.\n\n");

  // Reuse colouring (the digit = colour class = primary channel group).
  std::printf("Reuse pattern (cluster 7; digits are colour classes):\n\n");
  for (int y = 0; y < rows; ++y) {
    std::string line = (y & 1) ? "  " : "";
    for (int x = 0; x < cols; ++x) {
      line += std::to_string(plan.color_of(y * cols + x));
      line += "   ";
    }
    std::printf("  %s\n", line.c_str());
  }

  // Focus cell's interference region.
  std::printf("\nInterference region of cell %d ('C' = the cell, '#' = IN, '.' = far):\n\n",
              focus);
  for (int y = 0; y < rows; ++y) {
    std::string line = (y & 1) ? "  " : "";
    for (int x = 0; x < cols; ++x) {
      const cell::CellId c = y * cols + x;
      char ch = '.';
      if (c == focus) {
        ch = 'C';
      } else if (grid.interferes(focus, c)) {
        ch = '#';
      }
      line += ch;
      line += "   ";
    }
    std::printf("  %s\n", line.c_str());
  }

  std::printf("\ncell %d: colour %d, %d primary channels %s\n", focus,
              plan.color_of(focus), plan.primary(focus).size(),
              plan.primary(focus).to_string().c_str());
  std::printf("|IN_%d| = %zu (interior cells reach the maximum of %d)\n", focus,
              grid.interference(focus).size(), grid.max_interference_degree());
  std::printf("reuse plan valid (no interfering cells share a colour): %s\n",
              plan.validate(grid) ? "yes" : "NO");

  // Radio-layer context: what the reuse geometry delivers physically.
  const auto sir = radio::worst_case_sir(grid, plan, focus, 4.0);
  std::printf("\nradio layer (path-loss exponent 4):\n");
  std::printf("  co-channel reuse ratio D/R = sqrt(3*7) = %.2f\n",
              radio::reuse_distance_ratio(7));
  std::printf("  textbook first-tier SIR   = %.1f dB\n",
              radio::first_tier_sir_db(7, 4.0));
  std::printf("  exact worst case, cell %d = %.1f dB over %d interferers\n",
              focus, sir.sir_db, sir.interferers);

  // Same-colour cells are the co-channel set of the focus cell's primaries.
  std::printf("\nNearest co-channel cells of cell %d (same colour):\n", focus);
  int shown = 0;
  for (cell::CellId c = 0; c < grid.n_cells() && shown < 6; ++c) {
    if (c != focus && plan.color_of(c) == plan.color_of(focus)) {
      std::printf("  cell %d at hex distance %d\n", c, grid.distance(focus, c));
      ++shown;
    }
  }
  return 0;
}
