// Protocol trace: a microscope on the adaptive scheme's message exchanges.
//
// Runs a tiny scripted scenario — a cell exhausting its primaries, then
// borrowing from a neighbour — with network tracing enabled, so every
// REQUEST/RESPONSE/CHANGE_MODE/ACQUISITION/RELEASE appears on stdout with
// its simulated timestamp. Useful for studying the protocol and for
// debugging new schemes against the paper's Figs. 2-10.
//
//   $ ./protocol_trace
#include <cstdio>

#include "core/adaptive.hpp"
#include "runner/world.hpp"
#include "sim/log.hpp"

int main() {
  using namespace dca;

  runner::ScenarioConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.n_channels = 21;  // 3 primaries per cell: borrowing starts quickly
  cfg.cluster = 7;
  cfg.latency = sim::milliseconds(5);
  cfg.adaptive.theta_low = 1;
  cfg.adaptive.theta_high = 2;

  runner::World world(cfg, runner::Scheme::kAdaptive);

  sim::TraceLog trace;
  trace.set_level(sim::LogLevel::kTrace);
  trace.set_sink([](std::string_view line) { std::printf("%.*s\n",
                                                         static_cast<int>(line.size()),
                                                         line.data()); });
  world.network().set_trace(&trace);

  const cell::CellId hot = (cfg.rows / 2) * cfg.cols + cfg.cols / 2;
  std::printf("== scripted scenario: cell %d exhausts its 3 primaries, then borrows ==\n\n",
              hot);

  auto offer = [&world](cell::CellId c, traffic::CallId id, sim::Duration hold) {
    traffic::CallSpec spec;
    spec.id = id;
    spec.cell = c;
    spec.arrival = world.simulator().now();
    spec.holding = hold;
    world.submit_call(spec);
  };

  std::printf("-- t=0: three local calls (silent: local mode costs nothing,\n");
  std::printf("--       until the third triggers the CHANGE_MODE wave) --\n");
  offer(hot, 1, sim::seconds(40));
  offer(hot, 2, sim::seconds(40));
  offer(hot, 3, sim::seconds(40));
  world.simulator().run_until(sim::seconds(1));

  std::printf("\n-- t=1s: a fourth call: borrowing via one update round --\n");
  offer(hot, 4, sim::seconds(10));
  world.simulator().run_until(sim::seconds(2));

  std::printf("\n-- t=11s: the borrowed call ends (region-wide RELEASE) --\n");
  world.simulator().run_until(sim::seconds(20));

  std::printf("\n-- t=40s: the local calls end; the node returns to local mode --\n");
  world.simulator().run_to_quiescence();

  const auto& node = dynamic_cast<const core::AdaptiveNode&>(world.node(hot));
  std::printf("\nfinal state: mode=%d, in-use=%s, violations=%llu\n", node.mode(),
              node.in_use().to_string().c_str(),
              static_cast<unsigned long long>(world.interference_violations()));
  return 0;
}
