// Scheme face-off: run all five allocation schemes on identical traffic
// and print a side-by-side comparison — a one-command tour of the design
// space the paper surveys (static vs search vs update vs hybrid).
//
//   $ ./scheme_faceoff [rho]
#include <cstdio>
#include <cstdlib>

#include "metrics/table.hpp"
#include "runner/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dca;
  using metrics::Table;

  runner::ScenarioConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.n_channels = 70;
  cfg.cluster = 7;
  cfg.duration = sim::minutes(15);
  cfg.warmup = sim::minutes(2);

  const double rho = argc > 1 ? std::atof(argv[1]) : 0.7;
  std::printf("Face-off at rho = %.2f Erlang/cell (paired traffic, seed %llu)\n\n",
              rho, static_cast<unsigned long long>(cfg.seed));

  Table t({"Scheme", "drop%", "mean AcqT [T]", "p-max AcqT [T]", "msgs/call",
           "starved", "events"});
  for (const runner::Scheme s : runner::kAllSchemes) {
    const runner::RunResult r = runner::run_uniform(cfg, s, rho);
    if (r.violations != 0) {
      std::fprintf(stderr, "INVARIANT VIOLATION in %s\n",
                   runner::scheme_name(s).c_str());
      return 1;
    }
    t.add_row({runner::scheme_name(s), Table::num(100.0 * r.agg.drop_rate(), 2),
               Table::num(r.agg.delay_in_T.mean(), 3),
               Table::num(r.agg.delay_in_T.max(), 1),
               Table::num(r.agg.messages_per_call.mean(), 1),
               std::to_string(r.agg.starved),
               std::to_string(r.executed_events)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Reading guide: FCA = zero cost but most drops; Basic Search = flat\n"
              "2T latency tax; Basic Update = message tax that grows with load;\n"
              "Adaptive = near-zero cost at low load, bounded at high load.\n");
  return 0;
}
