// Hot-spot walkthrough: watch the adaptive scheme react to a transient
// traffic spike cell-by-cell — mode switches, borrowed channels, and the
// return to local mode when the spike passes.
//
//   $ ./hotspot_borrowing
//
// Demonstrates the lower-level World API (direct call submission and node
// introspection) rather than the one-shot experiment drivers.
#include <cstdio>

#include "core/adaptive.hpp"
#include "runner/world.hpp"
#include "traffic/generator.hpp"
#include "traffic/profile.hpp"

int main() {
  using namespace dca;

  runner::ScenarioConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.n_channels = 70;
  cfg.cluster = 7;
  cfg.duration = sim::minutes(30);
  cfg.warmup = 0;
  cfg.adaptive.theta_low = 2;
  cfg.adaptive.theta_high = 4;

  runner::World world(cfg, runner::Scheme::kAdaptive);
  const cell::CellId hot = (cfg.rows / 2) * cfg.cols + cfg.cols / 2;

  // Light background everywhere; the hot cell runs at 12x for 10 minutes.
  const traffic::HotspotProfile profile(cfg.arrival_rate_for_load(0.12), {hot},
                                        12.0, sim::minutes(10), sim::minutes(20));
  traffic::TrafficSource source(
      world.simulator(), world.grid(), profile, cfg.mean_holding_s, cfg.seed,
      [&world](const traffic::CallSpec& spec) { world.submit_call(spec); });
  source.start(cfg.duration);

  const auto& node = dynamic_cast<const core::AdaptiveNode&>(world.node(hot));

  std::printf("minute | mode | in-use | borrowed | free primaries | subscribers nearby\n");
  std::printf("-------+------+--------+----------+----------------+-------------------\n");
  for (int minute = 1; minute <= 30; ++minute) {
    world.simulator().run_until(sim::minutes(minute));
    int borrowed = (node.in_use() - world.plan().primary(hot)).size();
    int subscribers = 0;
    for (const cell::CellId j : world.grid().interference(hot)) {
      const auto& nb = dynamic_cast<const core::AdaptiveNode&>(world.node(j));
      if (nb.update_subscribers().contains(hot)) ++subscribers;
    }
    std::printf("%6d | %4d | %6d | %8d | %14d | %19d\n", minute, node.mode(),
                node.in_use().size(), borrowed, node.free_primary_count(),
                subscribers);
  }
  world.simulator().run_to_quiescence();

  const auto agg = world.collector().aggregate(world.latency_bound());
  std::printf("\nhot-spot summary: %llu calls, %.2f%% dropped, "
              "acquisition mix local/update/search = %.2f/%.2f/%.2f\n",
              static_cast<unsigned long long>(agg.offered),
              100.0 * agg.drop_rate(), agg.xi1, agg.xi2, agg.xi3);
  std::printf("mode switches at the hot cell: %llu to borrowing, %llu back to local\n",
              static_cast<unsigned long long>(node.switches_to_borrowing()),
              static_cast<unsigned long long>(node.switches_to_local()));
  std::printf("co-channel violations: %llu\n",
              static_cast<unsigned long long>(world.interference_violations()));
  return world.interference_violations() == 0 ? 0 : 1;
}
